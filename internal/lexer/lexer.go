// Package lexer implements a hand-written scanner for MiniFort source
// text. It produces token.Kind values with positions and literal
// spellings, reporting malformed input through a source.ErrorList.
package lexer

import (
	"strings"

	"fsicp/internal/source"
	"fsicp/internal/token"
)

// Token is one scanned token.
type Token struct {
	Kind token.Kind
	Pos  source.Pos
	Lit  string // spelling for IDENT, INTLIT, REALLIT, STRINGLIT, COMMENT
}

// Lexer scans a File.
type Lexer struct {
	file   *source.File
	src    string
	offset int
	errs   *source.ErrorList
	lits   map[string]string // interned literal spellings
}

// New returns a Lexer over f, appending diagnostics to errs.
func New(f *source.File, errs *source.ErrorList) *Lexer {
	return &Lexer{file: f, src: f.Content, errs: errs, lits: make(map[string]string)}
}

// intern returns a copy of lit that does not alias the source text,
// deduplicated per lexer. Token.Lit values outlive the scan (they end
// up in AST nodes), and a naive substring would pin the whole file's
// backing array — defeating File.ReleaseContent in the streaming
// loader. Interning pays one small allocation per distinct spelling
// and lets the file contents be reclaimed the moment parsing is done.
func (l *Lexer) intern(lit string) string {
	if s, ok := l.lits[lit]; ok {
		return s
	}
	s := strings.Clone(lit)
	l.lits[s] = s
	return s
}

func (l *Lexer) pos() source.Pos { return l.file.Pos(l.offset) }

func (l *Lexer) peek() byte {
	if l.offset < len(l.src) {
		return l.src[l.offset]
	}
	return 0
}

func (l *Lexer) peekAt(n int) byte {
	if l.offset+n < len(l.src) {
		return l.src[l.offset+n]
	}
	return 0
}

func isLetter(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func (l *Lexer) skipSpace() {
	for l.offset < len(l.src) {
		switch l.src[l.offset] {
		case ' ', '\t', '\r', '\n':
			l.offset++
		default:
			return
		}
	}
}

// Next scans and returns the next token, skipping whitespace and
// comments. At end of input it returns an EOF token forever.
func (l *Lexer) Next() Token {
	for {
		t := l.scan()
		if t.Kind != token.COMMENT {
			return t
		}
	}
}

// NextWithComments scans the next token, including comments.
func (l *Lexer) NextWithComments() Token { return l.scan() }

func (l *Lexer) scan() Token {
	l.skipSpace()
	pos := l.pos()
	if l.offset >= len(l.src) {
		return Token{Kind: token.EOF, Pos: pos}
	}
	c := l.src[l.offset]

	switch {
	case isLetter(c):
		start := l.offset
		for l.offset < len(l.src) && (isLetter(l.src[l.offset]) || isDigit(l.src[l.offset])) {
			l.offset++
		}
		lit := l.intern(l.src[start:l.offset])
		kind := token.Lookup(lit)
		if kind != token.IDENT {
			return Token{Kind: kind, Pos: pos, Lit: lit}
		}
		return Token{Kind: token.IDENT, Pos: pos, Lit: lit}

	case isDigit(c) || (c == '.' && isDigit(l.peekAt(1))):
		return l.scanNumber(pos)
	}

	l.offset++
	switch c {
	case '"':
		return l.scanString(pos)
	case '#':
		start := l.offset
		for l.offset < len(l.src) && l.src[l.offset] != '\n' {
			l.offset++
		}
		return Token{Kind: token.COMMENT, Pos: pos, Lit: l.intern(l.src[start:l.offset])}
	case '/':
		if l.peek() == '/' {
			start := l.offset - 1
			for l.offset < len(l.src) && l.src[l.offset] != '\n' {
				l.offset++
			}
			return Token{Kind: token.COMMENT, Pos: pos, Lit: l.intern(l.src[start:l.offset])}
		}
		return Token{Kind: token.QUO, Pos: pos}
	case '+':
		return Token{Kind: token.ADD, Pos: pos}
	case '-':
		return Token{Kind: token.SUB, Pos: pos}
	case '*':
		return Token{Kind: token.MUL, Pos: pos}
	case '%':
		return Token{Kind: token.REM, Pos: pos}
	case '=':
		if l.peek() == '=' {
			l.offset++
			return Token{Kind: token.EQL, Pos: pos}
		}
		return Token{Kind: token.ASSIGN, Pos: pos}
	case '!':
		if l.peek() == '=' {
			l.offset++
			return Token{Kind: token.NEQ, Pos: pos}
		}
		return Token{Kind: token.NOT, Pos: pos}
	case '<':
		if l.peek() == '=' {
			l.offset++
			return Token{Kind: token.LEQ, Pos: pos}
		}
		return Token{Kind: token.LSS, Pos: pos}
	case '>':
		if l.peek() == '=' {
			l.offset++
			return Token{Kind: token.GEQ, Pos: pos}
		}
		return Token{Kind: token.GTR, Pos: pos}
	case '&':
		if l.peek() == '&' {
			l.offset++
			return Token{Kind: token.LAND, Pos: pos}
		}
		l.errs.Errorf(pos, "unexpected character %q (did you mean %q?)", "&", "&&")
		return Token{Kind: token.ILLEGAL, Pos: pos, Lit: "&"}
	case '|':
		if l.peek() == '|' {
			l.offset++
			return Token{Kind: token.LOR, Pos: pos}
		}
		l.errs.Errorf(pos, "unexpected character %q (did you mean %q?)", "|", "||")
		return Token{Kind: token.ILLEGAL, Pos: pos, Lit: "|"}
	case '(':
		return Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return Token{Kind: token.RBRACE, Pos: pos}
	case ',':
		return Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return Token{Kind: token.SEMICOLON, Pos: pos}
	}
	l.errs.Errorf(pos, "unexpected character %q", string(c))
	return Token{Kind: token.ILLEGAL, Pos: pos, Lit: string(c)}
}

func (l *Lexer) scanNumber(pos source.Pos) Token {
	start := l.offset
	kind := token.INTLIT
	for l.offset < len(l.src) && isDigit(l.src[l.offset]) {
		l.offset++
	}
	if l.peek() == '.' && l.peekAt(1) != '.' {
		kind = token.REALLIT
		l.offset++
		for l.offset < len(l.src) && isDigit(l.src[l.offset]) {
			l.offset++
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		mark := l.offset
		l.offset++
		if c := l.peek(); c == '+' || c == '-' {
			l.offset++
		}
		if isDigit(l.peek()) {
			kind = token.REALLIT
			for l.offset < len(l.src) && isDigit(l.src[l.offset]) {
				l.offset++
			}
		} else {
			l.offset = mark // 'e' begins an identifier, not an exponent
		}
	}
	lit := l.intern(l.src[start:l.offset])
	if isLetter(l.peek()) {
		l.errs.Errorf(l.pos(), "identifier immediately follows number %q", lit)
	}
	return Token{Kind: kind, Pos: pos, Lit: lit}
}

func (l *Lexer) scanString(pos source.Pos) Token {
	start := l.offset
	for l.offset < len(l.src) && l.src[l.offset] != '"' && l.src[l.offset] != '\n' {
		l.offset++
	}
	if l.offset >= len(l.src) || l.src[l.offset] != '"' {
		l.errs.Errorf(pos, "unterminated string literal")
		return Token{Kind: token.ILLEGAL, Pos: pos, Lit: l.intern(l.src[start:l.offset])}
	}
	lit := l.intern(l.src[start:l.offset])
	l.offset++ // closing quote
	return Token{Kind: token.STRINGLIT, Pos: pos, Lit: lit}
}

// ScanAll returns every token up to and including EOF. Mainly for tests.
func (l *Lexer) ScanAll() []Token {
	var out []Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
