package lexer

import (
	"testing"

	"fsicp/internal/source"
	"fsicp/internal/token"
)

func scan(t *testing.T, src string) ([]Token, *source.ErrorList) {
	t.Helper()
	f := source.NewFile("test.mf", src)
	errs := &source.ErrorList{File: f}
	return New(f, errs).ScanAll(), errs
}

func kinds(toks []Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	toks, errs := scan(t, "proc main x if42 while")
	if errs.HasErrors() {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []token.Kind{token.PROC, token.IDENT, token.IDENT, token.IDENT, token.WHILE, token.EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if toks[3].Lit != "if42" {
		t.Errorf("ident with digits: got %q", toks[3].Lit)
	}
}

func TestOperators(t *testing.T) {
	toks, errs := scan(t, "+ - * / % == != < <= > >= && || ! = ( ) { } , ;")
	if errs.HasErrors() {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []token.Kind{
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.LAND, token.LOR, token.NOT, token.ASSIGN,
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.COMMA, token.SEMICOLON, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
		lit  string
	}{
		{"42", token.INTLIT, "42"},
		{"0", token.INTLIT, "0"},
		{"3.14", token.REALLIT, "3.14"},
		{".5", token.REALLIT, ".5"},
		{"1e10", token.REALLIT, "1e10"},
		{"2.5e-3", token.REALLIT, "2.5e-3"},
		{"7E+2", token.REALLIT, "7E+2"},
	}
	for _, c := range cases {
		toks, errs := scan(t, c.src)
		if errs.HasErrors() {
			t.Errorf("%q: unexpected errors: %v", c.src, errs)
			continue
		}
		if toks[0].Kind != c.kind || toks[0].Lit != c.lit {
			t.Errorf("%q: got (%v, %q), want (%v, %q)", c.src, toks[0].Kind, toks[0].Lit, c.kind, c.lit)
		}
	}
}

func TestNumberNotExponent(t *testing.T) {
	// "1e" is the number 1 followed by identifier e... but our lexer
	// reports an error for an identifier immediately following a number.
	_, errs := scan(t, "1e")
	if !errs.HasErrors() {
		t.Errorf("expected error for '1e'")
	}
}

func TestComments(t *testing.T) {
	toks, errs := scan(t, "x # a comment\ny // another\nz")
	if errs.HasErrors() {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT, token.EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestString(t *testing.T) {
	toks, errs := scan(t, `print "hello world"`)
	if errs.HasErrors() {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if toks[1].Kind != token.STRINGLIT || toks[1].Lit != "hello world" {
		t.Errorf("got (%v, %q)", toks[1].Kind, toks[1].Lit)
	}
}

func TestUnterminatedString(t *testing.T) {
	_, errs := scan(t, `"abc`)
	if !errs.HasErrors() {
		t.Error("expected error for unterminated string")
	}
}

func TestIllegalChars(t *testing.T) {
	for _, src := range []string{"@", "$", "&", "|", "~"} {
		_, errs := scan(t, src)
		if !errs.HasErrors() {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestPositions(t *testing.T) {
	f := source.NewFile("t.mf", "ab\ncd ef")
	errs := &source.ErrorList{File: f}
	toks := New(f, errs).ScanAll()
	wantPos := []source.Position{
		{Filename: "t.mf", Line: 1, Column: 1},
		{Filename: "t.mf", Line: 2, Column: 1},
		{Filename: "t.mf", Line: 2, Column: 4},
	}
	for i, w := range wantPos {
		got := f.Position(toks[i].Pos)
		if got != w {
			t.Errorf("token %d: got %v, want %v", i, got, w)
		}
	}
}
