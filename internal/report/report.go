// Package report is the machine-readable encoding of one analysis: the
// JSON document cmd/fsicp emits under -json and cmd/fsicpd serves per
// request. It lives outside both commands so the CLI and the daemon
// cannot drift apart — one shape, one golden test.
//
// A Report contains only deterministic facts (no timings), so the same
// source and configuration always produce byte-identical output, which
// is what the determinism suites compare. The one exception is the
// Cache block: cache traffic is observability that legitimately differs
// between cold and warm runs, so determinism comparisons must ignore
// it — every other field is byte-identical with or without a cache.
package report

import (
	"encoding/json"

	fsicp "fsicp"
)

// Report is the machine-readable shape of one analysis.
type Report struct {
	Program       ProgramInfo           `json:"program"`
	Method        string                `json:"method"`
	Floats        bool                  `json:"propagateFloats"`
	Constants     []fsicp.Constant      `json:"constants"`
	CallSites     []fsicp.CallSiteInfo  `json:"callSites"`
	CallMetrics   fsicp.CallSiteMetrics `json:"callSiteMetrics"`
	EntryMetrics  fsicp.EntryMetrics    `json:"entryMetrics"`
	BackEdgesUsed int                   `json:"backEdgesUsed"`
	// Returns maps function name to its proven return constant (only
	// when the return-constant extension ran and proved any).
	Returns map[string]string `json:"returns,omitempty"`
	// Degradations lists the procedures answered from the
	// flow-insensitive fallback (deadline, fuel, or fault isolation) —
	// plus, in daemon responses, the per-request load-shed record;
	// absent on a fully precise run, so existing consumers and the
	// golden test are unaffected.
	Degradations []fsicp.Degradation `json:"degradations,omitempty"`
	// Optimize reports the optimization pipeline's rewrites when
	// -optimize ran; absent otherwise, so existing consumers and the
	// golden test are unaffected.
	Optimize *fsicp.OptimizeReport `json:"optimize,omitempty"`
	// Cache reports persistent-store traffic when a cache directory is
	// configured; absent otherwise. It is observability, not an
	// analysis fact: the counts differ between cold and warm runs, so
	// determinism comparisons (and the golden test) must ignore this
	// block — every other field is byte-identical with or without the
	// cache.
	Cache *CacheReport `json:"cache,omitempty"`
}

// CacheReport is the JSON shape of fsicp.CacheStats.
type CacheReport struct {
	MemHits    int64 `json:"memHits"`
	MemMisses  int64 `json:"memMisses"`
	DiskHits   int64 `json:"diskHits"`
	DiskMisses int64 `json:"diskMisses"`
	DiskWrites int64 `json:"diskWrites"`
	Evictions  int64 `json:"evictions"`
	Corrupt    int64 `json:"corrupt"`
}

// ProgramInfo summarises the loaded program.
type ProgramInfo struct {
	Procedures int `json:"procedures"`
	CallEdges  int `json:"callEdges"`
	BackEdges  int `json:"backEdges"`
}

// Build gathers the report for one analysis.
func Build(prog *fsicp.Program, a *fsicp.Analysis, cfg fsicp.Config) Report {
	back, total := prog.BackEdges()
	r := Report{
		Program:       ProgramInfo{Procedures: len(prog.Procedures()), CallEdges: total, BackEdges: back},
		Method:        cfg.Method.String(),
		Floats:        cfg.PropagateFloats,
		Constants:     a.Constants(),
		CallSites:     a.CallSites(),
		CallMetrics:   a.CallSiteMetrics(),
		EntryMetrics:  a.EntryMetrics(),
		BackEdgesUsed: a.UsedFlowInsensitiveFallback(),
		Degradations:  a.Degradations(),
	}
	if cfg.CacheDir != "" {
		cs := a.CacheStats()
		r.Cache = &CacheReport{
			MemHits: cs.MemHits, MemMisses: cs.MemMisses,
			DiskHits: cs.DiskHits, DiskMisses: cs.DiskMisses,
			DiskWrites: cs.DiskWrites, Evictions: cs.Evictions, Corrupt: cs.Corrupt,
		}
	}
	if cfg.ReturnConstants {
		for _, name := range prog.Procedures() {
			if v, ok := a.ReturnConstant(name); ok {
				if r.Returns == nil {
					r.Returns = make(map[string]string)
				}
				r.Returns[name] = v
			}
		}
	}
	return r
}

// Encode renders the report as indented JSON with a trailing newline.
func (r Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
