package interp_test

import (
	"strings"
	"testing"

	"fsicp/internal/ast"
	"fsicp/internal/interp"
	"fsicp/internal/testutil"
	"fsicp/internal/val"
)

func run(t *testing.T, src string, opts interp.Options) *interp.Result {
	t.Helper()
	prog := testutil.MustBuild(t, src)
	return interp.Run(prog, opts)
}

func TestHello(t *testing.T) {
	r := run(t, `program p
proc main() {
  print "hello", 1 + 2
}`, interp.Options{})
	if r.Err != nil {
		t.Fatalf("err: %v", r.Err)
	}
	if r.Output != "hello 3\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestControlFlow(t *testing.T) {
	r := run(t, `program p
proc main() {
  var s int = 0
  var i int
  for i = 1, 5 {
    if i % 2 == 0 {
      s = s + i * 10
    } else {
      s = s + i
    }
  }
  print s
  var j int = 3
  while j > 0 {
    j = j - 1
  }
  print j
}`, interp.Options{})
	if r.Err != nil {
		t.Fatalf("err: %v", r.Err)
	}
	// 1 + 20 + 3 + 40 + 5 = 69
	if r.Output != "69\n0\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestByRefMutation(t *testing.T) {
	r := run(t, `program p
proc main() {
  var x int = 1
  call bump(x)
  print x
  call bump(x + 0)
  print x
}
proc bump(b int) {
  b = b + 10
}`, interp.Options{})
	if r.Err != nil {
		t.Fatalf("err: %v", r.Err)
	}
	// The first call mutates x by reference; the second passes a temp.
	if r.Output != "11\n11\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestGlobalSharingAndAlias(t *testing.T) {
	r := run(t, `program p
global g int = 5
proc main() {
  use g
  call f(g)
  print g
}
proc f(a int) {
  use g
  a = 100
  print g
}`, interp.Options{})
	if r.Err != nil {
		t.Fatalf("err: %v", r.Err)
	}
	// a and g share a cell: assigning a changes g.
	if r.Output != "100\n100\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	r := run(t, `program p
proc main() {
  print fact(5)
}
func fact(n int) int {
  if n <= 1 {
    return 1
  }
  return n * fact(n - 1)
}`, interp.Options{})
	if r.Err != nil {
		t.Fatalf("err: %v", r.Err)
	}
	if r.Output != "120\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestReadInput(t *testing.T) {
	vals := []int64{7, 8}
	i := 0
	r := run(t, `program p
proc main() {
  var a int
  var b int
  read a
  read b
  print a + b
}`, interp.Options{Input: func(tp ast.Type) val.Value {
		v := val.Int(vals[i%len(vals)])
		i++
		return v
	}})
	if r.Err != nil {
		t.Fatalf("err: %v", r.Err)
	}
	if r.Output != "15\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestDivByZeroAborts(t *testing.T) {
	r := run(t, `program p
proc main() {
  var z int = 0
  print 1 / z
}`, interp.Options{})
	if r.Err == nil {
		t.Fatal("expected runtime error")
	}
	if !strings.Contains(r.Err.Error(), "division") {
		t.Errorf("err: %v", r.Err)
	}
}

func TestStepLimit(t *testing.T) {
	r := run(t, `program p
proc main() {
  while true {
  }
}`, interp.Options{MaxSteps: 1000})
	if r.Err != interp.ErrStepLimit {
		t.Fatalf("err: %v, want step limit", r.Err)
	}
}

func TestRealArith(t *testing.T) {
	r := run(t, `program p
proc main() {
  var x real = 1.5
  print x * 2.0 + 0.25
}`, interp.Options{})
	if r.Output != "3.25\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestTraceEntryObservations(t *testing.T) {
	r := run(t, `program p
proc main() {
  call f(1)
  call f(1)
  call g(1)
  call g(2)
}
proc f(a int) { print a }
proc g(b int) { print b }`, interp.Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	prog := r.Trace
	var fObs, gObs *interp.Observation
	for p, m := range prog.Entry {
		for v, o := range m {
			if p.Name == "f" && v.Name == "a" {
				fObs = o
			}
			if p.Name == "g" && v.Name == "b" {
				gObs = o
			}
		}
	}
	if v, ok := fObs.Constant(); !ok || v.I != 1 {
		t.Errorf("f.a observation: %+v", fObs)
	}
	if _, ok := gObs.Constant(); ok {
		t.Errorf("g.b must vary: %+v", gObs)
	}
	for p, n := range prog.Invocations {
		switch p.Name {
		case "main":
			if n != 1 {
				t.Errorf("main invocations %d", n)
			}
		case "f", "g":
			if n != 2 {
				t.Errorf("%s invocations %d", p.Name, n)
			}
		}
	}
}

func TestFuncFallOffReturnsZero(t *testing.T) {
	r := run(t, `program p
proc main() {
  print f(0)
}
func f(a int) int {
  if a > 0 {
    return 7
  }
}`, interp.Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Output != "0\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestUninitializedLocalsAreZero(t *testing.T) {
	r := run(t, `program p
proc main() {
  var i int
  var x real
  var b bool
  print i, x, b
}`, interp.Options{})
	if r.Output != "0 0 false\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestBreakContinueSemantics(t *testing.T) {
	r := run(t, `program p
proc main() {
  var i int
  var s int = 0
  for i = 1, 10 {
    if i == 3 {
      continue
    }
    if i == 6 {
      break
    }
    s = s + i
  }
  print s, i
}`, interp.Options{})
	// 1+2+4+5 = 12, i stops at 6
	if r.Output != "12 6\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestExitAndReturnTraces(t *testing.T) {
	r := run(t, `program p
global g int = 0
proc main() {
  use g
  var x int
  x = f(2)
  x = f(3)
  print x, g
}
func f(n int) int {
  use g
  g = g + n
  return n * 10
}`, interp.Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	var fReturns *interp.Observation
	for p, o := range r.Trace.Returns {
		if p.Name == "f" {
			fReturns = o
		}
	}
	if fReturns == nil || fReturns.Count != 2 || !fReturns.Multiple {
		t.Errorf("f returns observation: %+v", fReturns)
	}
	// Exit values of g from f: 2 then 5 — varies.
	for p, m := range r.Trace.ExitVars {
		if p.Name != "f" {
			continue
		}
		for v, o := range m {
			if v.Name == "g" {
				if !o.Multiple {
					t.Errorf("g exit observation should vary: %+v", o)
				}
			}
			if v.Name == "n" {
				if c, ok := o.Constant(); ok {
					t.Errorf("n exit should vary, got constant %v", c)
				}
			}
		}
	}
	if r.Output != "30 5\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestObservationConstant(t *testing.T) {
	var o interp.Observation
	if _, ok := o.Constant(); ok {
		t.Error("empty observation cannot be constant")
	}
}
