// Package interp is a reference interpreter for MiniFort programs in IR
// form. It exists to be the *soundness oracle* for the constant
// propagators: it executes the CFG IR directly — the very representation
// the analyses run on — with physical by-reference cells, and records
// the value of every formal and global at each procedure entry, each
// call site, and each return. A constant the analysis claims must match
// every recorded runtime value; package interp_test and the progen
// property tests enforce this for every method.
//
// By-reference semantics: a bare-identifier actual shares the caller's
// storage cell with the callee's formal; any other actual is copied
// into a fresh cell (Fortran argument temporaries), so callee stores
// are lost. Reference-parameter aliasing therefore "just happens"
// physically; the analyses' clobbers and MOD closures exist to stay
// sound with respect to this behaviour.
package interp

import (
	"errors"
	"fmt"
	"strings"

	"fsicp/internal/ast"
	"fsicp/internal/ir"
	"fsicp/internal/sem"
	"fsicp/internal/val"
)

// Options configures a run.
type Options struct {
	// Input supplies values for read statements; nil reads zeros.
	Input func(t ast.Type) val.Value
	// MaxSteps bounds execution (instructions + terminators); 0 means
	// a default of 2,000,000.
	MaxSteps int
	// TraceGlobalsAtCalls also records every global's value at every
	// executed call site (used by the metric soundness tests).
	TraceGlobalsAtCalls bool
}

// ErrStepLimit is returned when execution exceeds MaxSteps.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// Observation aggregates the values one variable took at one
// observation point.
type Observation struct {
	First    val.Value
	Count    int
	Multiple bool // saw at least two distinct values
}

// note records one more observed value.
func (o *Observation) note(v val.Value) {
	if o.Count == 0 {
		o.First = v
	} else if !o.Multiple && !o.First.Equal(v) {
		o.Multiple = true
	}
	o.Count++
}

// Constant reports whether every observed value was the same, and that
// value.
func (o *Observation) Constant() (val.Value, bool) {
	if o == nil || o.Count == 0 || o.Multiple {
		return val.Value{}, false
	}
	return o.First, true
}

// Trace is everything the interpreter observed.
type Trace struct {
	// Entry[p][v] aggregates v's values at entry to p (formals of p
	// and all globals).
	Entry map[*sem.Proc]map[*sem.Var]*Observation
	// Args[call][i] aggregates the i-th actual's value at the call.
	Args map[*ir.CallInstr][]*Observation
	// GlobalsAtCall[call][g] aggregates global values at the call
	// (only with TraceGlobalsAtCalls).
	GlobalsAtCall map[*ir.CallInstr]map[*sem.Var]*Observation
	// Returns[p] aggregates function return values.
	Returns map[*sem.Proc]*Observation
	// ExitVars[p][v] aggregates formal/global values at returns from p.
	ExitVars map[*sem.Proc]map[*sem.Var]*Observation
	// Invocations[p] counts calls of p.
	Invocations map[*sem.Proc]int
}

// Result of a run.
type Result struct {
	Output string
	Steps  int
	Trace  *Trace
	// Err is non-nil if execution aborted (step limit, division by
	// zero); the trace remains valid for everything observed before.
	Err error
}

type machine struct {
	prog    *ir.Program
	opts    Options
	globals map[*sem.Var]*val.Value
	out     strings.Builder
	steps   int
	trace   *Trace
}

// Run executes the program from main.
func Run(prog *ir.Program, opts Options) *Result {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 2_000_000
	}
	m := &machine{
		prog:    prog,
		opts:    opts,
		globals: make(map[*sem.Var]*val.Value),
		trace: &Trace{
			Entry:         make(map[*sem.Proc]map[*sem.Var]*Observation),
			Args:          make(map[*ir.CallInstr][]*Observation),
			GlobalsAtCall: make(map[*ir.CallInstr]map[*sem.Var]*Observation),
			Returns:       make(map[*sem.Proc]*Observation),
			ExitVars:      make(map[*sem.Proc]map[*sem.Var]*Observation),
			Invocations:   make(map[*sem.Proc]int),
		},
	}
	for _, g := range prog.Sem.Globals {
		v := val.Zero(g.Type)
		if init, ok := prog.Sem.GlobalInit[g]; ok {
			v = init
		}
		cell := v
		m.globals[g] = &cell
	}
	res := &Result{Trace: m.trace}
	defer func() {
		res.Output = m.out.String()
		res.Steps = m.steps
	}()
	_, err := m.call(prog.Sem.Main, nil)
	res.Err = err
	res.Output = m.out.String()
	res.Steps = m.steps
	return res
}

type frame struct {
	cells map[*sem.Var]*val.Value
}

func (m *machine) cell(f *frame, v *sem.Var) *val.Value {
	if v.IsGlobal() {
		return m.globals[v]
	}
	c, ok := f.cells[v]
	if !ok {
		nv := val.Zero(v.Type)
		c = &nv
		f.cells[v] = c
	}
	return c
}

func (m *machine) observeEntry(p *sem.Proc, f *frame) {
	obs := m.trace.Entry[p]
	if obs == nil {
		obs = make(map[*sem.Var]*Observation)
		m.trace.Entry[p] = obs
	}
	note := func(v *sem.Var, x val.Value) {
		o := obs[v]
		if o == nil {
			o = &Observation{}
			obs[v] = o
		}
		o.note(x)
	}
	for _, fp := range p.Params {
		note(fp, *m.cell(f, fp))
	}
	for _, g := range m.prog.Sem.Globals {
		note(g, *m.globals[g])
	}
}

func (m *machine) observeExit(p *sem.Proc, f *frame) {
	obs := m.trace.ExitVars[p]
	if obs == nil {
		obs = make(map[*sem.Var]*Observation)
		m.trace.ExitVars[p] = obs
	}
	note := func(v *sem.Var, x val.Value) {
		o := obs[v]
		if o == nil {
			o = &Observation{}
			obs[v] = o
		}
		o.note(x)
	}
	for _, fp := range p.Params {
		note(fp, *m.cell(f, fp))
	}
	for _, g := range m.prog.Sem.Globals {
		note(g, *m.globals[g])
	}
}

// call invokes p with the given argument cells (one per formal).
func (m *machine) call(p *sem.Proc, argCells []*val.Value) (val.Value, error) {
	fn := m.prog.FuncOf[p]
	f := &frame{cells: make(map[*sem.Var]*val.Value)}
	for i, fp := range p.Params {
		if i < len(argCells) {
			f.cells[fp] = argCells[i]
		}
	}
	m.trace.Invocations[p]++
	m.observeEntry(p, f)

	b := fn.Entry()
	for {
		for _, in := range b.Instrs {
			m.steps++
			if m.steps > m.opts.MaxSteps {
				return val.Value{}, ErrStepLimit
			}
			if err := m.exec(f, in); err != nil {
				return val.Value{}, err
			}
		}
		m.steps++
		if m.steps > m.opts.MaxSteps {
			return val.Value{}, ErrStepLimit
		}
		switch t := b.Term.(type) {
		case *ir.Jump:
			b = t.Target
		case *ir.If:
			if m.cell(f, t.Cond).B {
				b = t.Then
			} else {
				b = t.Else
			}
		case *ir.Ret:
			var rv val.Value
			if t.Val != nil {
				rv = *m.cell(f, t.Val)
				ro := m.trace.Returns[p]
				if ro == nil {
					ro = &Observation{}
					m.trace.Returns[p] = ro
				}
				ro.note(rv)
			}
			m.observeExit(p, f)
			return rv, nil
		default:
			return val.Value{}, fmt.Errorf("interp: unterminated block in %s", p.Name)
		}
	}
}

func (m *machine) exec(f *frame, in ir.Instr) error {
	switch in := in.(type) {
	case *ir.ConstInstr:
		*m.cell(f, in.Dst) = in.Val
	case *ir.CopyInstr:
		*m.cell(f, in.Dst) = *m.cell(f, in.Src)
	case *ir.UnaryInstr:
		v, ok := val.Unary(in.Op, *m.cell(f, in.X))
		if !ok {
			return fmt.Errorf("interp: invalid unary %s", in.Op)
		}
		*m.cell(f, in.Dst) = v
	case *ir.BinaryInstr:
		v, ok := val.Binary(in.Op, *m.cell(f, in.X), *m.cell(f, in.Y))
		if !ok {
			return fmt.Errorf("interp: runtime error in %s (division by zero?)", in)
		}
		*m.cell(f, in.Dst) = v
	case *ir.ReadInstr:
		if m.opts.Input != nil {
			*m.cell(f, in.Dst) = m.opts.Input(in.Dst.Type)
		} else {
			*m.cell(f, in.Dst) = val.Zero(in.Dst.Type)
		}
	case *ir.PrintInstr:
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			if a.Var != nil {
				parts[i] = m.cell(f, a.Var).String()
			} else {
				parts[i] = a.Str
			}
		}
		m.out.WriteString(strings.Join(parts, " "))
		m.out.WriteByte('\n')
	case *ir.ClobberInstr:
		// Analysis artifact; aliasing is physical at runtime.
	case *ir.CallInstr:
		// Observe actuals first.
		obs := m.trace.Args[in]
		if obs == nil {
			obs = make([]*Observation, len(in.Args))
			for i := range obs {
				obs[i] = &Observation{}
			}
			m.trace.Args[in] = obs
		}
		for i, a := range in.Args {
			obs[i].note(*m.cell(f, a))
		}
		if m.opts.TraceGlobalsAtCalls {
			gm := m.trace.GlobalsAtCall[in]
			if gm == nil {
				gm = make(map[*sem.Var]*Observation)
				m.trace.GlobalsAtCall[in] = gm
			}
			for _, g := range m.prog.Sem.Globals {
				o := gm[g]
				if o == nil {
					o = &Observation{}
					gm[g] = o
				}
				o.note(*m.globals[g])
			}
		}
		cells := make([]*val.Value, len(in.Args))
		for i, a := range in.Args {
			if i < len(in.ByRef) && in.ByRef[i] != nil {
				cells[i] = m.cell(f, in.ByRef[i])
			} else {
				copyv := *m.cell(f, a)
				cells[i] = &copyv
			}
		}
		rv, err := m.call(in.Callee, cells)
		if err != nil {
			return err
		}
		if in.Dst != nil {
			*m.cell(f, in.Dst) = rv
		}
	default:
		return fmt.Errorf("interp: unknown instruction %T", in)
	}
	return nil
}
