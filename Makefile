GO ?= go

.PHONY: all build vet fmt test race check bench tables

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet fmt race

bench:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/icptables -table all
