// Package fsicp is a from-scratch reproduction of
//
//	Carini & Hind, "Flow-Sensitive Interprocedural Constant
//	Propagation", PLDI 1995 (doi:10.1145/207110.207113)
//
// as a reusable Go library. It contains a complete compiler mid-end for
// MiniFort — a small Fortran-flavoured language with by-reference
// parameters and program-wide globals — and, on top of it, the paper's
// two interprocedural constant propagation (ICP) algorithms, the
// jump-function baselines they are compared against, the paper's
// metrics, a reference interpreter used as a soundness oracle, and the
// synthetic SPEC-shaped benchmark suite that regenerates the paper's
// tables.
//
// # Quick start
//
//	prog, err := fsicp.Load("demo.mf", source)
//	if err != nil { ... }
//	a := prog.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
//	for _, c := range a.Constants() {
//	    fmt.Printf("%s: %s = %s (%s)\n", c.Proc, c.Var, c.Value, c.Kind)
//	}
//
// The facade in this package is self-contained; the analysis machinery
// lives in internal packages (internal/icp holds the paper's
// algorithms, internal/scc the Wegman–Zadeck engine, internal/jumpfunc
// the baselines, internal/bench the table harness).
package fsicp

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fsicp/internal/alias"
	"fsicp/internal/ast"
	"fsicp/internal/callgraph"
	"fsicp/internal/clone"
	"fsicp/internal/driver"
	"fsicp/internal/faultinject"
	"fsicp/internal/icp"
	"fsicp/internal/incr"
	"fsicp/internal/inline"
	"fsicp/internal/interp"
	"fsicp/internal/ir"
	"fsicp/internal/irbuild"
	"fsicp/internal/jumpfunc"
	"fsicp/internal/lattice"
	"fsicp/internal/metrics"
	"fsicp/internal/modref"
	"fsicp/internal/parser"
	"fsicp/internal/progen"
	"fsicp/internal/sem"
	"fsicp/internal/source"
	"fsicp/internal/store"
	"fsicp/internal/transform"
	"fsicp/internal/val"
)

// Method selects an interprocedural constant propagation algorithm.
type Method int

const (
	// FlowInsensitive is the paper's Figure 3 algorithm: literal and
	// pass-through propagation over the call graph plus unmodified
	// block-data globals.
	FlowInsensitive Method = iota
	// FlowSensitive is the paper's Figure 4 algorithm: one interleaved
	// Wegman–Zadeck analysis per procedure in a forward topological
	// traversal, with the flow-insensitive solution on back edges.
	FlowSensitive
	// FlowSensitiveIterative re-analyses procedures until a global
	// fixpoint — the comparison point the paper's method matches on
	// acyclic call graphs without any iteration.
	FlowSensitiveIterative
)

func (m Method) String() string {
	switch m {
	case FlowInsensitive:
		return "flow-insensitive"
	case FlowSensitive:
		return "flow-sensitive"
	case FlowSensitiveIterative:
		return "flow-sensitive-iterative"
	}
	return fmt.Sprintf("unknown(%d)", int(m))
}

// Config selects and configures an analysis.
type Config struct {
	Method Method
	// PropagateFloats enables interprocedural propagation of
	// floating-point constants (on in the paper's Tables 1–2, off in
	// Tables 3–5).
	PropagateFloats bool
	// ReturnConstants enables the paper's §3.2 extension: one extra
	// reverse traversal computing returned constants (function results
	// and exit values of by-reference formals and globals).
	ReturnConstants bool
	// ReturnsRefresh (with ReturnConstants) adds one more forward
	// traversal that feeds the return/exit summaries back into entry
	// environments — constants flowing out of one callee and into a
	// sibling's entry become visible.
	ReturnsRefresh bool
	// Workers bounds the number of procedures the flow-sensitive
	// methods analyse concurrently per wavefront level of the call
	// graph (0 means GOMAXPROCS). Analysis results are byte-identical
	// for every worker count.
	Workers int

	// CacheDir, when non-empty, backs the incremental engine's value
	// cache with a persistent on-disk store rooted at this directory,
	// so a cold process whose program and configuration match an
	// earlier run starts warm. The cache affects time only, never
	// results: reports are byte-identical with a cold, warm, or even
	// corrupted cache (invalid entries are dropped and recomputed; see
	// Analysis.CacheStats). One store handle is shared per directory
	// within the process. An unusable directory disables the disk
	// layer rather than failing the analysis.
	CacheDir string

	// Timeout bounds the analysis wall-clock time. When it expires the
	// run does not fail: procedures that have not finished their
	// flow-sensitive analysis degrade to the (sound) flow-insensitive
	// solution, and the affected procedures are listed in
	// Analysis.Degradations. 0 means no deadline.
	Timeout time.Duration

	// Fuel bounds the propagation steps each per-procedure
	// flow-sensitive analysis may take; a procedure exhausting its
	// budget degrades to the flow-insensitive solution. The bound is
	// deterministic: the same program and fuel degrade the same
	// procedures at every worker count. 0 means unlimited.
	Fuel int

	// Faults injects deterministic faults (panics, latency stalls,
	// simulated fuel exhaustion) into the analysis passes and
	// per-procedure workers — the testing harness for the resilience
	// layer. The zero FaultSpec injects nothing.
	Faults FaultSpec

	// MemStats turns on per-pass memory sampling for the analysis
	// passes: each pass records the live heap at pass exit and the GC
	// cycles it spanned (runtime.ReadMemStats at pass boundaries),
	// surfaced as heap=/gc= notes in Analysis.StatsTable — the
	// analysis-phase counterpart of LoadOptions.MemStats. Observability
	// only: results are unaffected. Off by default.
	MemStats bool
}

// ShedToFI returns the configuration's cheap, sound fallback: the same
// options with the flow-insensitive method selected. The paper's
// two-solution structure makes this the natural load-shedding answer —
// the FI solution is sound for every procedure (it is already the
// fallback for call-graph back edges and for degraded procedures), it
// costs a small fraction of the flow-sensitive traversal, and it never
// requires iteration. The daemon (internal/serve) answers with it when
// over its load watermark instead of queueing or dropping the request.
func (c Config) ShedToFI() Config {
	c.Method = FlowInsensitive
	return c
}

// engineKey normalises a configuration to the identity of its
// incremental engine. Timeout is excluded: a deadline changes which
// procedures finish, never the facts committed for the ones that do
// (degraded summaries are never cached), so sessions serving
// per-request deadlines — the daemon's whole traffic — share one
// engine instead of leaking one per distinct timeout value. Fuel and
// Faults stay in the key at this level for snapshot locality; the
// store-level cache keys carry them regardless. MemStats is excluded
// too: sampling is pure observability and never changes a result.
func (c Config) engineKey() Config {
	c.Timeout = 0
	c.MemStats = false
	return c
}

// FaultSpec configures deterministic, seeded fault injection (see
// internal/faultinject). Whether a fault fires at a given (pass,
// procedure) site is a pure function of the seed, so a fault scenario
// replays identically at any worker count. All fields comparable:
// Config remains usable as a map key.
type FaultSpec struct {
	Seed int64
	// PanicRate is the per-site probability of an injected panic,
	// FuelRate of a simulated fuel exhaustion, LatencyRate of a stall
	// of Latency (default 1ms). All in [0, 1].
	PanicRate   float64
	FuelRate    float64
	LatencyRate float64
	Latency     time.Duration
}

func (s FaultSpec) spec() faultinject.Spec {
	return faultinject.Spec{
		Seed:        s.Seed,
		PanicRate:   s.PanicRate,
		FuelRate:    s.FuelRate,
		LatencyRate: s.LatencyRate,
		Latency:     s.Latency,
	}
}

// Degradation reports one procedure (or whole pass, when Proc is
// empty) that fell back to the flow-insensitive solution instead of
// completing its flow-sensitive analysis. Degraded results stay sound;
// they only lose precision.
type Degradation struct {
	Proc   string `json:"proc,omitempty"`
	Pass   string `json:"pass"`
	Reason string `json:"reason"` // "panic", "fuel-exhausted", "cancelled", "deadline"
	Detail string `json:"detail,omitempty"`
}

func (d Degradation) String() string {
	who := d.Proc
	if who == "" {
		who = "<pass>"
	}
	s := fmt.Sprintf("%s: %s during %s", who, d.Reason, d.Pass)
	if d.Detail != "" {
		s += " (" + d.Detail + ")"
	}
	return s
}

// JumpFunctionKind selects a baseline jump-function implementation
// (Callahan–Cooper–Kennedy–Torczon 1986; Grove–Torczon 1993).
type JumpFunctionKind int

const (
	Literal JumpFunctionKind = iota
	IntraConstant
	PassThrough
	Polynomial
)

func (k JumpFunctionKind) String() string {
	switch k {
	case Literal:
		return "literal"
	case IntraConstant:
		return "intra"
	case PassThrough:
		return "pass-through"
	case Polynomial:
		return "polynomial"
	}
	return fmt.Sprintf("unknown(%d)", int(k))
}

// Program is a loaded, checked, lowered MiniFort program with its
// interprocedural context (call graph, aliases, MOD/REF) prepared.
//
// A Program may be analysed from multiple goroutines concurrently:
// Analyze, AnalyzeJumpFunctions, and the read-only accessors never
// mutate the program. Transform, Clone, Inline, and
// RemoveDeadProcedures DO mutate the program in place and must not race
// with any other use of it.
type Program struct {
	ctx   *icp.Context
	trace *driver.Trace // load-pipeline pass records
}

// LoadOptions configures the load pipeline.
type LoadOptions struct {
	// Workers bounds the fan-out of the sharded load passes —
	// per-procedure lowering, alias partner lists, MOD/REF collection,
	// clobber insertion, and the eager SSA prebuild (0 means
	// GOMAXPROCS). The loaded program is byte-identical for every
	// worker count; only wall-clock time changes.
	Workers int

	// MemStats turns on per-pass memory sampling: each load pass records
	// the live heap at its exit and the GC cycles it triggered
	// (runtime.ReadMemStats at pass boundaries), surfaced in the stats
	// table as "heap=… gc=…". Off by default — the world-stopping
	// ReadMemStats reads are cheap per pass but not free.
	MemStats bool
}

// Load parses, checks, and lowers MiniFort source text, then runs the
// pre-ICP interprocedural phases (call graph, reference-parameter
// aliases, MOD/REF). Errors carry positions and one line per
// diagnostic.
//
// The pipeline runs as named passes under the pass manager
// (internal/driver); the per-pass timings are carried into every
// Analysis and reported by Analysis.Stats.
func Load(filename, src string) (*Program, error) {
	return LoadWith(filename, src, LoadOptions{})
}

// LoadWith is Load with options.
func LoadWith(filename, src string, opts LoadOptions) (*Program, error) {
	return LoadContext(context.Background(), filename, src, opts)
}

// LoadContext is LoadWith under a context: when ctx ends, in-flight
// sharded passes stop claiming work, their goroutines drain, and the
// load fails with the context's error.
func LoadContext(ctx context.Context, filename, src string, opts LoadOptions) (*Program, error) {
	f := source.NewFile(filename, src)
	var (
		astProg *ast.Program
		semProg *sem.Program
	)
	m := driver.NewManager()
	m.SetWorkers(opts.Workers)
	m.SetMemStats(opts.MemStats)
	m.Add(driver.Pass{Name: "parse", Run: func(st *driver.PassStats) (err error) {
		astProg, err = parser.ParseFile(f)
		return err
	}})
	m.Add(driver.Pass{Name: "sem", Deps: []string{"parse"}, Run: func(st *driver.PassStats) (err error) {
		semProg, err = sem.Check(astProg, f)
		return err
	}})
	ictx := addBackendPasses(m, &semProg)
	trace, err := m.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return &Program{ctx: *ictx, trace: trace}, nil
}

// SourceFile is one file of a multi-file corpus handed to LoadFiles:
// a display name (used in diagnostics) plus its contents.
type SourceFile struct {
	Name string
	Src  string
}

// LoadFiles loads a multi-file corpus: exactly one file with a
// "program" header plus any number of "module" files contributing
// globals and procedures to the same namespace. Files parse
// concurrently (one shard per file, bounded by LoadOptions.Workers)
// against per-file buffers — the corpus is never concatenated into one
// string — and the parsed units merge in the order given, so the loaded
// program is byte-identical for every worker count. Diagnostics carry
// the owning file's name and position.
func LoadFiles(files []SourceFile, opts LoadOptions) (*Program, error) {
	return LoadFilesContext(context.Background(), files, opts)
}

// LoadFilesContext is LoadFiles under a context.
func LoadFilesContext(ctx context.Context, files []SourceFile, opts LoadOptions) (*Program, error) {
	cfs := make([]corpusFile, len(files))
	for i, sf := range files {
		sf := sf
		cfs[i] = corpusFile{name: sf.Name, size: len(sf.Src), read: func() (string, error) { return sf.Src, nil }}
	}
	return loadCorpus(ctx, cfs, opts)
}

// corpusFile describes one file of a corpus to the streaming loader:
// a display name, the content length in bytes (known up front, from
// the caller's buffer or a stat), and a reader that produces the
// contents on demand. Sizes let the loader lay out the corpus's whole
// Pos space before any contents exist; readers let it hold at most
// one file's contents per parse worker.
type corpusFile struct {
	name string
	size int
	read func() (string, error)
}

// loadCorpus is the multi-file load pipeline shared by LoadFiles and
// LoadDir. Each parse shard reads its file, attaches the contents to
// the pre-sized source.File, parses, and releases the contents — so at
// most LoadOptions.Workers file contents are resident at once and the
// corpus is never materialized wholesale (the lexer copies the literal
// spellings it keeps, so nothing pins a released buffer). The peak
// resident source-byte count is reported as "src-peak=" in the parse
// pass's stats row.
func loadCorpus(ctx context.Context, files []corpusFile, opts LoadOptions) (*Program, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("fsicp: no source files")
	}
	fset := source.NewFileSet()
	sfiles := make([]*source.File, len(files))
	for i, cf := range files {
		sfiles[i] = fset.AddSized(cf.name, cf.size)
	}
	var (
		astProg *ast.Program
		semProg *sem.Program
	)
	units := make([]*ast.Program, len(files))
	perrs := make([]error, len(files))
	var parseFailed atomic.Bool
	var srcCur, srcPeak atomic.Int64
	m := driver.NewManager()
	m.SetWorkers(opts.Workers)
	m.SetMemStats(opts.MemStats)
	// One shard per file. A failed file flips parseFailed so shards that
	// have not started yet return immediately — the load is already
	// doomed, and skipping their read+parse bounds the wasted work on
	// large corpora. Finish then aggregates the recorded diagnostics in
	// file order; an errored load constructs no Program, so no partially
	// filled tables survive.
	m.Add(driver.Pass{Name: "parse",
		Shards: func(workers int) (int, func(int)) {
			return len(sfiles), func(i int) {
				if parseFailed.Load() {
					return
				}
				src, err := files[i].read()
				if err != nil {
					perrs[i] = err
					parseFailed.Store(true)
					return
				}
				cur := srcCur.Add(int64(len(src)))
				for {
					p := srcPeak.Load()
					if cur <= p || srcPeak.CompareAndSwap(p, cur) {
						break
					}
				}
				f := sfiles[i]
				if err := f.SetContent(src); err != nil {
					srcCur.Add(-int64(len(src)))
					perrs[i] = err
					parseFailed.Store(true)
					return
				}
				u, err := parser.ParseUnit(f, fset)
				f.ReleaseContent()
				srcCur.Add(-int64(len(src)))
				if err != nil {
					perrs[i] = err
					parseFailed.Store(true)
					return
				}
				units[i] = u
			}
		},
		Finish: func(st *driver.PassStats) error {
			errs := &source.ErrorList{File: fset}
			for _, err := range perrs {
				var el *source.ErrorList
				if errors.As(err, &el) {
					errs.Diags = append(errs.Diags, el.Diags...)
				} else if err != nil {
					return err
				}
			}
			if err := errs.Err(); err != nil {
				return err
			}
			roots := 0
			for _, u := range units {
				if u != nil && !u.IsModule {
					roots++
					if roots > 1 {
						errs.Errorf(u.NamePos, "corpus has more than one 'program' unit (%q)", u.Name)
					}
				}
			}
			if roots == 0 {
				errs.Errorf(units[0].NamePos, "corpus has no 'program' unit (%d module files)", len(units))
			}
			if err := errs.Err(); err != nil {
				return err
			}
			astProg = ast.MergeUnits(units)
			st.Procs = len(astProg.Procs)
			st.Notes = fmt.Sprintf("%d files src-peak=%d", len(units), srcPeak.Load())
			return nil
		}})
	m.Add(driver.Pass{Name: "sem", Deps: []string{"parse"}, Run: func(st *driver.PassStats) (err error) {
		semProg, err = sem.Check(astProg, fset)
		return err
	}})
	ictx := addBackendPasses(m, &semProg)
	trace, err := m.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return &Program{ctx: *ictx, trace: trace}, nil
}

// LoadDir loads a corpus from a directory: the files named by a
// progen corpus manifest (corpus.json) when one is present, otherwise
// every *.mf file in lexical order. File contents stream through the
// parse pass — each is read just before its parse and released just
// after, so at most LoadOptions.Workers file contents are in memory at
// once, never the whole corpus.
func LoadDir(dir string, opts LoadOptions) (*Program, error) {
	return LoadDirContext(context.Background(), dir, opts)
}

// LoadDirContext is LoadDir under a context.
func LoadDirContext(ctx context.Context, dir string, opts LoadOptions) (*Program, error) {
	names, err := corpusFileNames(dir)
	if err != nil {
		return nil, err
	}
	cfs := make([]corpusFile, 0, len(names))
	for _, name := range names {
		path := filepath.Join(dir, name)
		fi, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		cfs = append(cfs, corpusFile{name: name, size: int(fi.Size()), read: func() (string, error) {
			b, err := os.ReadFile(path)
			return string(b), err
		}})
	}
	return loadCorpus(ctx, cfs, opts)
}

// corpusFileNames resolves a corpus directory to an ordered file list.
func corpusFileNames(dir string) ([]string, error) {
	if m, err := progen.ReadManifest(dir); err == nil {
		return m.Files, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".mf") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("fsicp: no corpus manifest and no .mf files in %s", dir)
	}
	sort.Strings(names)
	return names, nil
}

// addBackendPasses wires the post-sem load passes (irbuild through the
// eager SSA prebuild) onto m. *semProg must be populated by an earlier
// pass; the returned pointer yields the prepared interprocedural
// context once the manager has run.
func addBackendPasses(m *driver.Manager, semProg **sem.Program) **icp.Context {
	var (
		irProg *ir.Program
		cg     *callgraph.Graph
		al     *alias.Info
		mr     *modref.Info
		pb     *irbuild.Builder
		mb     *modref.Builder
		ictx   *icp.Context
	)
	// Lowering fans out per procedure; the serial Finish epilogue hands
	// out the dense program-wide variable and call-site IDs in
	// procedure order, reproducing exactly the serial numbering.
	m.Add(driver.Pass{Name: "irbuild", Deps: []string{"sem"},
		Run: func(st *driver.PassStats) error {
			pb = irbuild.NewBuilder(*semProg)
			return nil
		},
		Shards: func(workers int) (int, func(int)) {
			return pb.NumProcs(), pb.BuildProc
		},
		Finish: func(st *driver.PassStats) (err error) {
			irProg, err = pb.Finish()
			if err == nil {
				st.Procs = len(irProg.Funcs)
			}
			return err
		}})
	m.Add(driver.Pass{Name: "callgraph", Deps: []string{"irbuild"}, Run: func(st *driver.PassStats) error {
		cg = callgraph.Build(irProg)
		st.Procs = len(cg.Reachable)
		back, total := cg.BackEdgeRatio()
		st.Notes = fmt.Sprintf("%d edges, %d back", total, back)
		return nil
	}})
	// The interprocedural alias-pair fixpoint stays serial (it iterates
	// shared per-procedure pair sets over call edges); only the
	// per-procedure partner-list construction shards.
	m.Add(driver.Pass{Name: "alias", Deps: []string{"callgraph"},
		Run: func(st *driver.PassStats) error {
			al = alias.Fixpoint(irProg, cg)
			st.Procs = len(cg.Reachable)
			return nil
		},
		Shards: func(workers int) (int, func(int)) {
			return len(cg.Reachable), al.BuildPartners
		},
		Finish: func(st *driver.PassStats) error {
			al.FinishPartners()
			return nil
		}})
	// Immediate MOD/REF collection is a per-procedure IR walk and
	// shards; the interprocedural fixpoint and MayDef fill stay serial
	// in Finish.
	m.Add(driver.Pass{Name: "modref", Deps: []string{"alias"},
		Run: func(st *driver.PassStats) error {
			mb = modref.Begin(irProg, cg, al)
			st.Procs = len(cg.Reachable)
			return nil
		},
		Shards: func(workers int) (int, func(int)) {
			return mb.NumProcs(), mb.CollectProc
		},
		Finish: func(st *driver.PassStats) error {
			mr = mb.Finish()
			return nil
		}})
	// Clobber insertion mutates the IR, so it must follow MOD/REF,
	// which reads the pre-clobber program. Each shard rewrites and
	// renumbers only its own function.
	m.Add(driver.Pass{Name: "clobbers", Deps: []string{"modref"},
		Shards: func(workers int) (int, func(int)) {
			return al.ClobberShards(irProg, cg)
		}})
	// Eager SSA prebuild: construct every reachable procedure's SSA
	// form now, in parallel, so the first analysis (whose wavefront
	// otherwise serializes on lazily built SSA) starts hot.
	m.Add(driver.Pass{Name: "ssa", Deps: []string{"clobbers"},
		Run: func(st *driver.PassStats) error {
			ictx = &icp.Context{Prog: irProg, CG: cg, AL: al, MR: mr}
			st.Procs = len(cg.Reachable)
			return nil
		},
		Shards: func(workers int) (int, func(int)) {
			return ictx.SSAPrebuildShards()
		}})
	return &ictx
}

// Procedures returns the names of the procedures reachable from main,
// in the forward topological order the analyses use.
func (p *Program) Procedures() []string {
	out := make([]string, len(p.ctx.CG.Reachable))
	for i, q := range p.ctx.CG.Reachable {
		out[i] = q.Name
	}
	return out
}

// BackEdges reports how recursive the program is: the number of call
// graph back edges and the total number of call edges (the paper's
// measure of how flow-insensitive the combined FS solution becomes).
func (p *Program) BackEdges() (back, total int) {
	return p.ctx.CG.BackEdgeRatio()
}

// DumpIR renders the whole-program CFG IR.
func (p *Program) DumpIR() string { return p.ctx.Prog.Dump() }

// DumpCallGraph renders the PCG with back edges marked "*".
func (p *Program) DumpCallGraph() string { return p.ctx.CG.Dump() }

// Constant is one interprocedurally propagated constant.
type Constant struct {
	Proc  string `json:"proc"` // procedure at whose entry the constant holds
	Var   string `json:"var"`  // formal parameter or global name
	Value string `json:"value"`
	Kind  string `json:"kind"` // "formal" or "global"
}

// Analysis is the outcome of one ICP run.
type Analysis struct {
	prog  *Program
	res   *icp.Result
	cfg   Config
	trace *driver.Trace
}

// Analyze runs the selected ICP method. It is safe to call concurrently
// on the same Program (each call gets its own result and trace).
func (p *Program) Analyze(cfg Config) *Analysis {
	a, err := p.AnalyzeContext(context.Background(), cfg)
	if err != nil {
		// Unreachable with a background context unless the engine has a
		// genuine bug outside every protected region; surface it exactly
		// as the pre-backstop code would have.
		panic(err)
	}
	return a
}

// AnalyzeContext is Analyze under a context. Cancellation and deadline
// expiry do not fail the analysis: unfinished procedures degrade to
// the flow-insensitive solution and are reported by
// Analysis.Degradations. The returned error is reserved for internal
// failures that escape every recovery layer; injected faults,
// timeouts, and fuel exhaustion never produce one.
func (p *Program) AnalyzeContext(ctx context.Context, cfg Config) (*Analysis, error) {
	return p.analyze(ctx, cfg, nil)
}

// analyze implements Analyze and Session.Analyze; eng is the session's
// incremental engine (nil for a cold run).
func (p *Program) analyze(ctx context.Context, cfg Config, eng *incr.Engine) (a *Analysis, err error) {
	// Backstop: the per-pass and per-worker recover() wrappers inside
	// the engine isolate faults at their site; anything that still
	// escapes becomes an error here rather than a crashed process.
	defer func() {
		if r := recover(); r != nil {
			a, err = nil, fmt.Errorf("analysis panic: %v", r)
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	// Every analysis carries its own trace, seeded with the load
	// pipeline's pass records so Stats reports the whole journey from
	// source text to solution.
	tr := driver.NewTrace()
	tr.SetMemStats(cfg.MemStats)
	if p.trace != nil {
		for _, st := range p.trace.Passes() {
			tr.Record(st)
		}
	}
	if eng == nil && cfg.CacheDir != "" {
		eng = newEngine(cfg, tr)
	}
	opts := icp.Options{
		PropagateFloats: cfg.PropagateFloats,
		ReturnConstants: cfg.ReturnConstants,
		ReturnsRefresh:  cfg.ReturnsRefresh,
		Workers:         cfg.Workers,
		Trace:           tr,
		Incr:            eng,
		Ctx:             ctx,
		Fuel:            cfg.Fuel,
		// Nothing downstream of the public API reads Result.Intra; the
		// facade re-derives SSA views on demand, so intraprocedural
		// results recycle through the scc pool instead of accumulating.
		DropIntra: true,
	}
	if inj := faultinject.New(cfg.Faults.spec()); inj != nil {
		opts.Faults = inj.Hook()
		opts.FaultKey = cfg.Faults.spec().String()
	}
	switch cfg.Method {
	case FlowInsensitive:
		opts.Method = icp.FlowInsensitive
	case FlowSensitiveIterative:
		opts.Method = icp.FlowSensitiveIterative
	default:
		opts.Method = icp.FlowSensitive
	}
	return &Analysis{prog: p, res: icp.Analyze(p.ctx, opts), cfg: cfg, trace: tr}, nil
}

// SourceFingerprint fingerprints MiniFort source text by its token
// stream: kinds and spellings, never positions, comments, or
// whitespace. Two sources with equal fingerprints compile to
// structurally identical programs and therefore produce byte-identical
// analyses under equal configurations — the property the daemon's
// request coalescing and session pool rely on. The computation is one
// lexer sweep, far cheaper than a load.
func SourceFingerprint(src string) string { return incr.TokenKey(src) }

// FlushCaches marks a run boundary on every persistent cache handle
// the process has opened (see Config.CacheDir): the generation stamp
// advances and is written to disk, so entries from this process age
// correctly in replicas that share the directory. Entry data itself is
// always written through at commit time; this flushes only the
// recency clock. The daemon calls it on graceful shutdown.
func FlushCaches() {
	diskStores.Range(func(_, v any) bool {
		v.(*store.Disk).EndRun()
		return true
	})
}

// diskStores shares one persistent store handle per cache directory:
// repeated analyses (and every Session engine) using the same
// directory see one generation sequence, one size accounting, and one
// set of counters.
var diskStores sync.Map // absolute dir → *store.Disk

// diskStore returns the shared handle for dir, opening it on first
// use. An unusable directory records a trace note and returns nil —
// the analysis proceeds without a disk layer rather than failing.
func diskStore(dir string, tr *driver.Trace) *store.Disk {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	if d, ok := diskStores.Load(dir); ok {
		return d.(*store.Disk)
	}
	d, err := store.Open(dir, store.Options{})
	if err != nil {
		tr.Record(driver.PassStats{Name: "cache", Notes: "disk layer disabled: " + err.Error()})
		return nil
	}
	actual, _ := diskStores.LoadOrStore(dir, d)
	return actual.(*store.Disk)
}

// newEngine builds the incremental engine for one Config: the
// in-memory generational cache alone by default, layered over the
// persistent store when CacheDir is set.
func newEngine(cfg Config, tr *driver.Trace) *incr.Engine {
	if cfg.CacheDir != "" {
		if d := diskStore(cfg.CacheDir, tr); d != nil {
			return incr.NewEngineWithStore(incr.NewTiered(incr.NewMemStore(0), d))
		}
	}
	return incr.NewEngine()
}

// CacheStats is one run's summary-store traffic (see Config.CacheDir):
// lookups served by the in-memory layer, lookups that went to disk,
// and the disk layer's maintenance counters. All zero for runs without
// an incremental engine.
type CacheStats struct {
	// MemHits/MemMisses count in-memory value-cache lookups.
	MemHits, MemMisses int64
	// DiskHits/DiskMisses count lookups that reached the disk layer
	// (an in-memory hit never does).
	DiskHits, DiskMisses int64
	// DiskWrites counts summaries persisted; Evictions entries removed
	// under the size cap; Corrupt entries dropped because they failed
	// validation (each one recomputed, never trusted).
	DiskWrites, Evictions, Corrupt int64
}

// Empty reports whether the run recorded no cache traffic at all.
func (c CacheStats) Empty() bool { return c == CacheStats{} }

// CacheStats reports this run's summary-store counters. Cache traffic
// is observability, not part of the analysis result: reports compare
// byte-identical whatever these numbers say.
func (a *Analysis) CacheStats() CacheStats {
	ds := a.res.Store
	return CacheStats{
		MemHits:    ds.Hits,
		MemMisses:  ds.Misses,
		DiskHits:   ds.DiskHits,
		DiskMisses: ds.DiskMisses,
		DiskWrites: ds.Writes,
		Evictions:  ds.Evictions,
		Corrupt:    ds.Corrupt,
	}
}

// Stats returns one record per pipeline pass that ran for this
// analysis, in execution order: the load passes (parse through
// clobbers) followed by the analysis passes (ssa, FI, FS, returns,
// metrics, ...).
func (a *Analysis) Stats() []driver.PassStats { return a.trace.Passes() }

// StatsTable renders Stats as an aligned per-pass timing table (the
// -stats output of cmd/fsicp).
func (a *Analysis) StatsTable() string { return a.trace.Table() }

// Constants lists every interprocedural constant the method
// established, sorted by procedure then variable.
func (a *Analysis) Constants() []Constant {
	var out []Constant
	for _, p := range a.prog.ctx.CG.Reachable {
		for _, f := range p.Params {
			if v, ok := a.res.EntryConstant(p, f); ok {
				out = append(out, Constant{Proc: p.Name, Var: f.Name, Value: v.String(), Kind: "formal"})
			}
		}
		for _, g := range a.prog.ctx.Prog.Sem.Globals {
			if v, ok := a.res.EntryConstant(p, g); ok && a.prog.ctx.MR.DRef[p].Has(g) {
				out = append(out, Constant{Proc: p.Name, Var: g.Name, Value: v.String(), Kind: "global"})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Var < out[j].Var
	})
	return out
}

// ReturnConstant reports the constant a function returns, if the
// return-constant extension proved one.
func (a *Analysis) ReturnConstant(proc string) (string, bool) {
	p := a.prog.ctx.Prog.Sem.ProcByName[proc]
	if p == nil || a.res.Returns == nil {
		return "", false
	}
	if rv := a.res.Returns[p]; rv.IsConst() {
		return rv.Val.String(), true
	}
	return "", false
}

// Duration returns the wall-clock time of the ICP phase.
func (a *Analysis) Duration() time.Duration { return a.res.AnalysisTime }

// UsedFlowInsensitiveFallback reports how many call edges consulted the
// flow-insensitive solution (non-zero only on recursive programs under
// the flow-sensitive method).
func (a *Analysis) UsedFlowInsensitiveFallback() int { return a.res.BackEdgesUsed }

// Degradations lists every procedure the analysis answered from the
// flow-insensitive fallback instead of the full flow-sensitive
// solution — because of a panic, fuel exhaustion, cancellation, or a
// deadline — sorted by (procedure, pass, reason). Empty on a fully
// precise run. Degraded results are sound over-approximations: every
// constant reported is still a true constant.
func (a *Analysis) Degradations() []Degradation {
	out := make([]Degradation, 0, len(a.res.Degradations))
	for _, d := range a.res.Degradations {
		out = append(out, Degradation{Proc: d.Proc, Pass: d.Pass, Reason: string(d.Reason), Detail: d.Detail})
	}
	return out
}

// Degraded reports whether any procedure fell back to the
// flow-insensitive solution during this analysis.
func (a *Analysis) Degraded() bool { return len(a.res.Degradations) > 0 }

// CallSiteInfo describes one call site under an analysis: which
// arguments carry known constants there. The paper calls these the
// call-site constant candidates; they are the raw material for
// transformations like procedure cloning.
type CallSiteInfo struct {
	Caller string `json:"caller"`
	Callee string `json:"callee"`
	// Args holds one entry per actual: the constant's rendering, or
	// "" when the argument is not constant at this site.
	Args []string `json:"args"`
	// Reachable is false when the analysis proved the call site dead.
	Reachable bool `json:"reachable"`
}

// CallSites lists every call site with its constant arguments.
func (a *Analysis) CallSites() []CallSiteInfo {
	var out []CallSiteInfo
	for _, e := range a.prog.ctx.CG.Edges {
		info := CallSiteInfo{Caller: e.Caller.Name, Callee: e.Callee.Name, Reachable: true}
		vals := a.res.ArgVals[e.Site]
		for _, v := range vals {
			if v.IsConst() {
				info.Args = append(info.Args, v.Val.String())
			} else {
				info.Args = append(info.Args, "")
			}
		}
		// Reachability comes from the flow-sensitive solution itself: a
		// site in a dead procedure or an unexecuted block is dead even
		// when it passes no arguments (⊤ argument values alone would
		// miss zero-arg calls). The portable summary carries it, so a
		// procedure reused from the incremental cache answers the same
		// as a freshly analysed one.
		if a.res.Dead[e.Caller] {
			info.Reachable = false
		} else if sum := a.res.Proc[e.Caller]; sum != nil {
			info.Reachable = sum.Sites[e.Site.SiteIdx].Reachable
		} else {
			// Flow-insensitive method: no intraprocedural fixpoint; fall
			// back to the ⊤-argument signal.
			for _, v := range vals {
				if v.IsTop() {
					info.Reachable = false
					break
				}
			}
		}
		out = append(out, info)
	}
	return out
}

// AnnotatedListing renders a per-procedure summary of the solution: the
// signature of every reachable procedure followed by the constants the
// analysis established at its entry (and its return constant, when the
// extension ran). Useful as a human-readable report of what the
// propagation achieved.
func (a *Analysis) AnnotatedListing() string {
	var b strings.Builder
	ctx := a.prog.ctx
	for _, p := range ctx.CG.Reachable {
		kw := "proc"
		if p.IsFunc {
			kw = "func"
		}
		params := make([]string, len(p.Params))
		for i, f := range p.Params {
			params[i] = f.Name + " " + f.Type.String()
		}
		fmt.Fprintf(&b, "%s %s(%s)", kw, p.Name, strings.Join(params, ", "))
		if p.IsFunc {
			fmt.Fprintf(&b, " %s", p.Result)
		}
		b.WriteString("\n")
		if a.res.Dead[p] {
			b.WriteString("  # unreachable under this solution\n")
			continue
		}
		var facts []string
		for _, f := range p.Params {
			if v, ok := a.res.EntryConstant(p, f); ok {
				facts = append(facts, f.Name+" = "+v.String())
			}
		}
		for _, g := range ctx.Prog.Sem.Globals {
			if v, ok := a.res.EntryConstant(p, g); ok && ctx.MR.DRef[p].Has(g) {
				facts = append(facts, g.Name+" = "+v.String())
			}
		}
		if len(facts) > 0 {
			fmt.Fprintf(&b, "  # entry constants: %s\n", strings.Join(facts, ", "))
		}
		if a.res.Returns != nil {
			if rv := a.res.Returns[p]; rv.IsConst() {
				fmt.Fprintf(&b, "  # returns %s\n", rv.Val.String())
			}
		}
	}
	return b.String()
}

// CallSiteMetrics is the paper's Table 1 row shape.
type CallSiteMetrics struct {
	Args      int `json:"args"`
	Imm       int `json:"immediate"`
	ConstArgs int `json:"constArgs"`
	GlobCand  int `json:"globalCandidates"`
	GlobPairs int `json:"globalPairs"`
	GlobVis   int `json:"globalVisible"`
}

// EntryMetrics is the paper's Table 2 row shape.
type EntryMetrics struct {
	Formals       int `json:"formals"`
	ConstFormals  int `json:"constFormals"`
	Procs         int `json:"procs"`
	GlobalEntries int `json:"globalEntries"`
}

// CallSiteMetrics computes the call-site constant-candidate counts.
func (a *Analysis) CallSiteMetrics() CallSiteMetrics {
	var m metrics.CallSite
	a.trace.Time("metrics", func(st *driver.PassStats) {
		m = metrics.CallSiteMetrics(a.res)
		st.Notes = "call sites"
	})
	return CallSiteMetrics{
		Args: m.Args, Imm: m.Imm, ConstArgs: m.ConstArgs,
		GlobCand: m.GlobCand, GlobPairs: m.GlobPairs, GlobVis: m.GlobVis,
	}
}

// EntryMetrics computes the propagated-constant counts.
func (a *Analysis) EntryMetrics() EntryMetrics {
	var m metrics.Entry
	a.trace.Time("metrics", func(st *driver.PassStats) {
		m = metrics.EntryMetrics(a.res)
		st.Notes = "entries"
	})
	return EntryMetrics{
		Formals: m.Formals, ConstFormals: m.ConstFormals,
		Procs: m.Procs, GlobalEntries: m.GlobalEntries,
	}
}

// Substitutions counts the intraprocedural constant substitutions this
// solution enables (the paper's Table 5 metric), along with folded
// branches and unreachable blocks.
func (a *Analysis) Substitutions() (substitutions, foldedBranches, unreachableBlocks int) {
	c := transform.CountSubstitutions(a.prog.ctx, func(q *sem.Proc) lattice.Env[*sem.Var] {
		return a.res.Entry[q]
	})
	return c.Substitutions, c.FoldedBranches, c.UnreachableBlocks
}

// envFn adapts the analysis result to the transform package's entry
// environment interface.
func (a *Analysis) envFn() transform.EnvFn {
	return func(q *sem.Proc) lattice.Env[*sem.Var] { return a.res.Entry[q] }
}

// TransformReport is what ApplyTransform did to the program: the
// paper's transformation step, by the numbers.
type TransformReport struct {
	// EntryAssignments is the number of interprocedural constants
	// materialised as assignments at procedure entries.
	EntryAssignments int `json:"entryAssignments"`
	// FoldedInstrs counts instructions rewritten to constant loads.
	FoldedInstrs int `json:"foldedInstrs"`
	// FoldedBranches counts conditional branches rewritten to jumps.
	FoldedBranches int `json:"foldedBranches"`
	// RemovedBlocks counts unreachable basic blocks deleted.
	RemovedBlocks int `json:"removedBlocks"`
}

// ApplyTransform rewrites the program in place to reflect the solution:
// entry-constant assignments, constant folding, branch folding, and
// unreachable-code removal — the fold-only subset of Optimize, which is
// exactly the paper's transformation step. The Program remains
// executable via Run.
func (a *Analysis) ApplyTransform() TransformReport {
	rep := transform.Apply(a.prog.ctx, a.envFn())
	return TransformReport{
		EntryAssignments: rep.EntryAssignments,
		FoldedInstrs:     rep.FoldedInstrs,
		FoldedBranches:   rep.FoldedBranches,
		RemovedBlocks:    rep.RemovedBlocks,
	}
}

// Transform is ApplyTransform returning bare counts: (entry
// assignments, folded instructions, folded branches, removed blocks).
//
// Deprecated: use ApplyTransform, whose named report cannot be
// misordered, or Optimize for the full pass pipeline. Transform will be
// removed one release after the pipeline's introduction.
func (a *Analysis) Transform() (int, int, int, int) {
	rep := a.ApplyTransform()
	return rep.EntryAssignments, rep.FoldedInstrs, rep.FoldedBranches, rep.RemovedBlocks
}

// OptimizeOptions selects optimization passes for Analysis.Optimize.
// The zero value (no pass selected) means every pass, so
// Optimize(OptimizeOptions{}) and Optimize(AllOptimizations()) agree.
type OptimizeOptions struct {
	// Fold enables constant folding + dead-branch deletion (the
	// paper's transformation step).
	Fold bool
	// CopyProp enables copy propagation.
	CopyProp bool
	// DSE enables dead-store elimination (removal of pure computations
	// whose result is never observed — typically copies stranded by
	// CopyProp).
	DSE bool
	// CSE enables local common-subexpression elimination over the
	// dominator tree.
	CSE bool
	// LICM enables hoisting of loop-invariant constants.
	LICM bool
	// Workers bounds the per-function shard fan-out (0 = GOMAXPROCS).
	// The rewritten program and the report are identical for every
	// worker count.
	Workers int
}

// AllOptimizations selects every pass.
func AllOptimizations() OptimizeOptions {
	return OptimizeOptions{Fold: true, CopyProp: true, DSE: true, CSE: true, LICM: true}
}

func (o OptimizeOptions) passes() []string {
	var out []string
	if o.Fold {
		out = append(out, transform.PassFold)
	}
	if o.CopyProp {
		out = append(out, transform.PassCopyProp)
	}
	if o.DSE {
		out = append(out, transform.PassDSE)
	}
	if o.CSE {
		out = append(out, transform.PassCSE)
	}
	if o.LICM {
		out = append(out, transform.PassLICM)
	}
	if out == nil {
		out = transform.AllPasses()
	}
	return out
}

// OptPassStats is the per-pass slice of an OptimizeReport.
type OptPassStats struct {
	Pass             string `json:"pass"`
	EntryAssignments int    `json:"entryAssignments,omitempty"`
	FoldedInstrs     int    `json:"foldedInstrs,omitempty"`
	FoldedBranches   int    `json:"foldedBranches,omitempty"`
	RemovedBlocks    int    `json:"removedBlocks,omitempty"`
	RemovedInstrs    int    `json:"removedInstrs,omitempty"`
	CopiesPropagated int    `json:"copiesPropagated,omitempty"`
	DeadStores       int    `json:"deadStores,omitempty"`
	CSEReplaced      int    `json:"cseReplaced,omitempty"`
	HoistedConsts    int    `json:"hoistedConsts,omitempty"`
}

// OptimizeReport is what Optimize did to the program: totals across the
// pipeline, then the per-pass breakdown in execution order.
type OptimizeReport struct {
	EntryAssignments int `json:"entryAssignments"`
	FoldedInstrs     int `json:"foldedInstrs"`
	FoldedBranches   int `json:"foldedBranches"`
	RemovedBlocks    int `json:"removedBlocks"`
	RemovedInstrs    int `json:"removedInstrs"`
	CopiesPropagated int `json:"copiesPropagated"`
	DeadStores       int `json:"deadStores"`
	CSEReplaced      int `json:"cseReplaced"`
	HoistedConsts    int `json:"hoistedConsts"`

	Passes []OptPassStats `json:"passes"`
}

// EliminatedInstrs is the headline "instructions eliminated" number:
// instructions deleted outright plus expression evaluations reduced to
// constant loads or copies.
func (r OptimizeReport) EliminatedInstrs() int {
	return r.RemovedInstrs + r.FoldedInstrs + r.CSEReplaced + r.DeadStores
}

// Optimize runs the SSA optimization pipeline over the program, driven
// by this analysis's constant-propagation results: constant folding +
// dead-branch deletion, copy propagation, local CSE, and loop-invariant
// constant hoisting, each sharded per function through the driver pass
// manager (their stats join Analysis.StatsTable). The rewrite is
// destructive — like Transform, it must not be applied to a Program
// still owned by a Session — but semantics-preserving: Run produces
// byte-identical output before and after, for every pass combination
// and worker count.
func (a *Analysis) Optimize(opts OptimizeOptions) (OptimizeReport, error) {
	rep, err := transform.Optimize(a.prog.ctx, a.envFn(), transform.Options{
		Passes:  opts.passes(),
		Workers: opts.Workers,
		Trace:   a.trace,
	})
	if err != nil {
		return OptimizeReport{}, err
	}
	out := OptimizeReport{
		EntryAssignments: rep.EntryAssignments,
		FoldedInstrs:     rep.FoldedInstrs,
		FoldedBranches:   rep.FoldedBranches,
		RemovedBlocks:    rep.RemovedBlocks,
		RemovedInstrs:    rep.RemovedInstrs,
		CopiesPropagated: rep.CopiesPropagated,
		DeadStores:       rep.DeadStores,
		CSEReplaced:      rep.CSEReplaced,
		HoistedConsts:    rep.HoistedConsts,
	}
	for _, p := range rep.Passes {
		out.Passes = append(out.Passes, OptPassStats{
			Pass:             p.Pass,
			EntryAssignments: p.EntryAssignments,
			FoldedInstrs:     p.FoldedInstrs,
			FoldedBranches:   p.FoldedBranches,
			RemovedBlocks:    p.RemovedBlocks,
			RemovedInstrs:    p.RemovedInstrs,
			CopiesPropagated: p.CopiesPropagated,
			DeadStores:       p.DeadStores,
			CSEReplaced:      p.CSEReplaced,
			HoistedConsts:    p.HoistedConsts,
		})
	}
	return out, nil
}

// ProcElimination is one procedure's row in Eliminations.
type ProcElimination struct {
	// Proc is the procedure name.
	Proc string `json:"proc"`
	// Instrs counts eliminable instructions: constant-foldable ones
	// plus those in unexecutable blocks.
	Instrs int `json:"instrs"`
	// Branches counts foldable conditional branches.
	Branches int `json:"branches"`
}

// Eliminations previews what the fold pass would eliminate, per
// procedure, without mutating the program — safe on Session-owned
// programs, which is how watch mode reports optimization impact per
// edit. Procedures with nothing to eliminate are omitted.
func (a *Analysis) Eliminations() []ProcElimination {
	var out []ProcElimination
	for _, e := range transform.MeasureEliminations(a.prog.ctx, a.envFn()) {
		out = append(out, ProcElimination{Proc: e.Proc.Name, Instrs: e.Instrs, Branches: e.Branches})
	}
	return out
}

// RemoveDeadProcedures deletes procedures this analysis proved can
// never execute (run Transform first so dead call sites are pruned).
// Returns the removed procedures' names.
func (a *Analysis) RemoveDeadProcedures() []string {
	a.prog.ctx.InvalidateSSA()
	return transform.RemoveDeadProcedures(a.prog.ctx, a.res.Dead)
}

// JumpAnalysis is a baseline jump-function solution.
type JumpAnalysis struct {
	prog *Program
	res  *jumpfunc.Result
}

// AnalyzeJumpFunctions runs a baseline jump-function method.
func (p *Program) AnalyzeJumpFunctions(kind JumpFunctionKind) *JumpAnalysis {
	var k jumpfunc.Kind
	switch kind {
	case Literal:
		k = jumpfunc.Literal
	case IntraConstant:
		k = jumpfunc.Intra
	case PassThrough:
		k = jumpfunc.PassThrough
	default:
		k = jumpfunc.Polynomial
	}
	return &JumpAnalysis{prog: p, res: jumpfunc.Analyze(p.ctx, k)}
}

// Constants lists the constant formals the baseline found.
func (a *JumpAnalysis) Constants() []Constant {
	var out []Constant
	for _, p := range a.prog.ctx.CG.Reachable {
		for _, f := range a.res.ConstantFormals(p) {
			e := a.res.Formals[f]
			out = append(out, Constant{Proc: p.Name, Var: f.Name, Value: e.Val.String(), Kind: "formal"})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Var < out[j].Var
	})
	return out
}

// Substitutions counts the substitutions the baseline's solution
// enables (Table 5).
func (a *JumpAnalysis) Substitutions() int {
	c := transform.CountSubstitutions(a.prog.ctx, func(q *sem.Proc) lattice.Env[*sem.Var] {
		return a.res.EntryEnv(q)
	})
	return c.Substitutions
}

// Clone performs goal-directed procedure cloning (Metzger–Stroud)
// driven by this analysis's per-call-site constants: procedures whose
// call sites disagree on constant arguments are cloned per pattern, so
// a re-analysis finds the per-clone constants. The program is modified
// in place and its interprocedural context rebuilt. Returns the number
// of clones created and the number of call sites retargeted.
func (a *Analysis) Clone(maxPerProc int) (cloned, retargeted int) {
	rep := clone.Run(a.prog.ctx, a.res, clone.Options{MaxClonesPerProc: maxPerProc})
	a.prog.ctx = icp.Prepare(a.prog.ctx.Prog)
	return rep.Cloned, rep.RetargetedCS
}

// Inline expands every non-recursive call site (procedure integration,
// the alternative to ICP that Wegman and Zadeck proposed and the
// paper's related work discusses). The interprocedural context is
// rebuilt afterwards, so subsequent Analyze calls see the inlined
// program. Returns the number of call sites expanded, the number
// skipped for recursion, and the CFG block growth factor.
func (p *Program) Inline(maxDepth int) (inlined, skippedRecursive int, growth float64) {
	rep := inline.Program(p.ctx.Prog, inline.Options{MaxDepth: maxDepth})
	p.ctx = icp.Prepare(p.ctx.Prog)
	g := 1.0
	if rep.BlocksBefore > 0 {
		g = float64(rep.BlocksAfter) / float64(rep.BlocksBefore)
	}
	return rep.Inlined, rep.SkippedRec, g
}

// AnalyzeJumpFunctionsWithReturns runs a baseline with return jump
// functions enabled (Grove–Torczon's extension; the paper compares
// against their no-return configuration).
func (p *Program) AnalyzeJumpFunctionsWithReturns(kind JumpFunctionKind) *JumpAnalysis {
	var k jumpfunc.Kind
	switch kind {
	case Literal:
		k = jumpfunc.Literal
	case IntraConstant:
		k = jumpfunc.Intra
	case PassThrough:
		k = jumpfunc.PassThrough
	default:
		k = jumpfunc.Polynomial
	}
	return &JumpAnalysis{prog: p, res: jumpfunc.AnalyzeWithReturns(p.ctx, jumpfunc.Options{Kind: k, Returns: true})}
}

// Use returns each reachable procedure's flow-sensitive USE set — the
// formals and globals it may reference before defining them (the §3.2
// upward-exposed-use computation; one reverse traversal, REF on back
// edges).
func (p *Program) Use() map[string][]string {
	var use map[*sem.Proc]modref.Set
	p.trace.Time("use", func(st *driver.PassStats) {
		use = icp.ComputeUse(p.ctx)
		st.Procs = len(p.ctx.CG.Reachable)
	})
	out := make(map[string][]string, len(use))
	for q, set := range use {
		var names []string
		for _, v := range set.Sorted() {
			names = append(names, v.Name)
		}
		out[q.Name] = names
	}
	return out
}

// RunResult is the outcome of interpreting the program.
type RunResult struct {
	Output string
	Steps  int
	Err    error
}

// Run executes the program with the reference interpreter. input
// supplies values for read statements (nil reads zeros); the variable's
// type name is "int", "real", or "bool".
func (p *Program) Run(input func(typeName string) any) RunResult {
	opts := interp.Options{}
	if input != nil {
		opts.Input = func(t ast.Type) val.Value {
			switch v := input(t.String()).(type) {
			case int:
				return val.Int(int64(v))
			case int64:
				return val.Int(v)
			case float64:
				return val.Real(v)
			case bool:
				return val.Bool(v)
			default:
				return val.Zero(t)
			}
		}
	}
	r := interp.Run(p.ctx.Prog, opts)
	return RunResult{Output: r.Output, Steps: r.Steps, Err: r.Err}
}

// FormatSource pretty-prints the program's AST back to canonical
// MiniFort.
func (p *Program) FormatSource() string {
	return ast.Format(p.ctx.Prog.Sem.AST)
}

// String summarises the program.
func (p *Program) String() string {
	back, total := p.BackEdges()
	return fmt.Sprintf("program %s: %d reachable procedures, %d call edges (%d back)",
		p.ctx.Prog.Sem.Name, len(p.ctx.CG.Reachable), total, back)
}
