// Benchmarks: one per paper table/figure (regenerating its data on the
// synthetic SPEC suite), plus ablations over the design choices
// DESIGN.md calls out (method, float propagation, return constants,
// alias/MOD preparation, back-edge handling).
//
// Run with: go test -bench=. -benchmem
package fsicp_test

import (
	"fmt"
	"runtime"
	"testing"

	fsicp "fsicp"
	"fsicp/internal/bench"
	"fsicp/internal/clone"
	"fsicp/internal/icp"
	"fsicp/internal/inline"
	"fsicp/internal/interp"
	"fsicp/internal/jumpfunc"
	"fsicp/internal/lattice"
	"fsicp/internal/metrics"
	"fsicp/internal/progen"
	"fsicp/internal/sem"
	"fsicp/internal/tables"
	"fsicp/internal/transform"
)

// compileSuite prepares contexts once; the benchmarks then measure the
// analysis phases proper, matching the paper's "analysis phase of the
// compilation" timing.
func compileSuite(b *testing.B, profiles []bench.Profile) []*icp.Context {
	b.Helper()
	var ctxs []*icp.Context
	for _, p := range profiles {
		ctx, err := tables.Compile(p)
		if err != nil {
			b.Fatal(err)
		}
		ctxs = append(ctxs, ctx)
	}
	return ctxs
}

func runSuite(b *testing.B, ctxs []*icp.Context, opts icp.Options) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ctx := range ctxs {
			icp.Analyze(ctx, opts)
		}
	}
}

// BenchmarkFigure1 regenerates the Figure 1 per-method comparison.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tables.Figure1Table(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (call-site candidates, SPECfp92,
// both methods plus metric extraction).
func BenchmarkTable1(b *testing.B) {
	ctxs := compileSuite(b, bench.SPECfp92())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ctx := range ctxs {
			fi := icp.Analyze(ctx, icp.Options{Method: icp.FlowInsensitive, PropagateFloats: true})
			fs := icp.Analyze(ctx, icp.Options{Method: icp.FlowSensitive, PropagateFloats: true})
			metrics.CallSiteMetrics(fi)
			metrics.CallSiteMetrics(fs)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (propagated constants, SPECfp92).
func BenchmarkTable2(b *testing.B) {
	ctxs := compileSuite(b, bench.SPECfp92())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ctx := range ctxs {
			fi := icp.Analyze(ctx, icp.Options{Method: icp.FlowInsensitive, PropagateFloats: true})
			fs := icp.Analyze(ctx, icp.Options{Method: icp.FlowSensitive, PropagateFloats: true})
			metrics.EntryMetrics(fi)
			metrics.EntryMetrics(fs)
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (first-release subset, floats
// off, call-site candidates).
func BenchmarkTable3(b *testing.B) {
	ctxs := compileSuite(b, bench.FirstRelease())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ctx := range ctxs {
			fi := icp.Analyze(ctx, icp.Options{Method: icp.FlowInsensitive})
			fs := icp.Analyze(ctx, icp.Options{Method: icp.FlowSensitive})
			metrics.CallSiteMetrics(fi)
			metrics.CallSiteMetrics(fs)
		}
	}
}

// BenchmarkTable4 regenerates Table 4 (first-release subset, floats
// off, propagated constants).
func BenchmarkTable4(b *testing.B) {
	ctxs := compileSuite(b, bench.FirstRelease())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ctx := range ctxs {
			fi := icp.Analyze(ctx, icp.Options{Method: icp.FlowInsensitive})
			fs := icp.Analyze(ctx, icp.Options{Method: icp.FlowSensitive})
			metrics.EntryMetrics(fi)
			metrics.EntryMetrics(fs)
		}
	}
}

// BenchmarkTable5 regenerates Table 5 (intraprocedural substitutions
// under POLYNOMIAL vs FI vs FS).
func BenchmarkTable5(b *testing.B) {
	ctxs := compileSuite(b, bench.FirstRelease())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ctx := range ctxs {
			poly := jumpfunc.Analyze(ctx, jumpfunc.Polynomial)
			fi := icp.Analyze(ctx, icp.Options{Method: icp.FlowInsensitive})
			fs := icp.Analyze(ctx, icp.Options{Method: icp.FlowSensitive})
			transform.CountSubstitutions(ctx, func(q *sem.Proc) lattice.Env[*sem.Var] { return poly.EntryEnv(q) })
			transform.CountSubstitutions(ctx, func(q *sem.Proc) lattice.Env[*sem.Var] { return fi.Entry[q] })
			transform.CountSubstitutions(ctx, func(q *sem.Proc) lattice.Env[*sem.Var] { return fs.Entry[q] })
		}
	}
}

// BenchmarkAnalysisFI and BenchmarkAnalysisFS measure the two analysis
// phases on the full suite — the paper's §4 timing comparison (FS ≈
// 1.5× FI).
func BenchmarkAnalysisFI(b *testing.B) {
	runSuite(b, compileSuite(b, bench.SPECfp92()),
		icp.Options{Method: icp.FlowInsensitive, PropagateFloats: true})
}

func BenchmarkAnalysisFS(b *testing.B) {
	runSuite(b, compileSuite(b, bench.SPECfp92()),
		icp.Options{Method: icp.FlowSensitive, PropagateFloats: true})
}

// Ablation: the return-constant extension's extra reverse traversal.
func BenchmarkAnalysisFSReturns(b *testing.B) {
	runSuite(b, compileSuite(b, bench.SPECfp92()),
		icp.Options{Method: icp.FlowSensitive, PropagateFloats: true, ReturnConstants: true})
}

// Ablation: float propagation off (Tables 3–5 configuration).
func BenchmarkAnalysisFSNoFloats(b *testing.B) {
	runSuite(b, compileSuite(b, bench.SPECfp92()),
		icp.Options{Method: icp.FlowSensitive})
}

// Ablation: the four jump-function baselines on the same suite.
func BenchmarkJumpFunctions(b *testing.B) {
	kinds := []jumpfunc.Kind{jumpfunc.Literal, jumpfunc.Intra, jumpfunc.PassThrough, jumpfunc.Polynomial}
	ctxs := compileSuite(b, bench.SPECfp92())
	for _, k := range kinds {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, ctx := range ctxs {
					jumpfunc.Analyze(ctx, k)
				}
			}
		})
	}
}

// BenchmarkPrepare measures the pre-ICP phases (call graph, aliases,
// MOD/REF) the paper's compilation model runs before ICP.
func BenchmarkPrepare(b *testing.B) {
	profiles := bench.SPECfp92()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range profiles {
			if _, err := tables.Compile(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBackEdgeSweep regenerates the §3.2 back-edge ratio
// experiment.
func BenchmarkBackEdgeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables.BackEdgeSweep(6)
	}
}

// BenchmarkInterp measures the reference interpreter on the suite
// (the soundness oracle's cost).
func BenchmarkInterp(b *testing.B) {
	ctxs := compileSuite(b, bench.SPECfp92())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ctx := range ctxs {
			r := interp.Run(ctx.Prog, interp.Options{MaxSteps: 10_000_000})
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkTransform measures the transformation phase under the FS
// solution.
func BenchmarkTransform(b *testing.B) {
	profiles := bench.SPECfp92()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var ctxs []*icp.Context
		var results []*icp.Result
		for _, p := range profiles {
			ctx, err := tables.Compile(p)
			if err != nil {
				b.Fatal(err)
			}
			ctxs = append(ctxs, ctx)
			results = append(results, icp.Analyze(ctx, icp.Options{Method: icp.FlowSensitive, PropagateFloats: true}))
		}
		b.StartTimer()
		for j, ctx := range ctxs {
			r := results[j]
			transform.Apply(ctx, func(q *sem.Proc) lattice.Env[*sem.Var] { return r.Entry[q] })
		}
	}
}

// BenchmarkOptimize measures the full four-pass optimization pipeline
// (fold, copy propagation, CSE, LICM) on the largest progen program
// under the FS solution. Loading and analysing sit outside the timer;
// each iteration rebuilds them because Optimize mutates the program.
func BenchmarkOptimize(b *testing.B) {
	name, src := largestProgen()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		prog, err := fsicp.LoadWith(name, src, fsicp.LoadOptions{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		a := prog.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true, Workers: 4})
		b.StartTimer()
		if _, err := a.Optimize(fsicp.AllOptimizations()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInline measures full procedure integration on the suite
// (the Wegman–Zadeck alternative the paper's related work discusses).
func BenchmarkInline(b *testing.B) {
	profiles := bench.FirstRelease()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range profiles {
			ctx, err := tables.Compile(p)
			if err != nil {
				b.Fatal(err)
			}
			inline.Program(ctx.Prog, inline.Options{MaxDepth: 4})
		}
	}
}

// BenchmarkClone measures one goal-directed cloning round plus the
// re-analysis (the Metzger–Stroud experiment).
func BenchmarkClone(b *testing.B) {
	profiles := bench.FirstRelease()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range profiles {
			ctx, err := tables.Compile(p)
			if err != nil {
				b.Fatal(err)
			}
			fs := icp.Analyze(ctx, icp.Options{Method: icp.FlowSensitive})
			clone.Run(ctx, fs, clone.Options{MaxClonesPerProc: 4})
			ctx2 := icp.Prepare(ctx.Prog)
			icp.Analyze(ctx2, icp.Options{Method: icp.FlowSensitive})
		}
	}
}

// BenchmarkJumpFunctionsWithReturns measures the return-jump-function
// ablation.
func BenchmarkJumpFunctionsWithReturns(b *testing.B) {
	ctxs := compileSuite(b, bench.SPECfp92())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ctx := range ctxs {
			jumpfunc.AnalyzeWithReturns(ctx, jumpfunc.Options{Kind: jumpfunc.Polynomial, Returns: true})
		}
	}
}

// BenchmarkIterative measures the fully iterative flow-sensitive
// fixpoint (the method the paper's one-pass algorithm avoids).
func BenchmarkIterative(b *testing.B) {
	runSuite(b, compileSuite(b, bench.SPECfp92()),
		icp.Options{Method: icp.FlowSensitiveIterative, PropagateFloats: true})
}

// BenchmarkAnalyzeParallel compares the wavefront scheduler's worker
// counts on the largest synthetic SPEC program (013.spice2g6, 120
// procedures). On a multi-core machine the higher worker counts should
// beat workers=1; the solution is byte-identical either way (the
// determinism test asserts that).
func BenchmarkAnalyzeParallel(b *testing.B) {
	profile := bench.SPECfp92()[0]
	ctx, err := tables.Compile(profile)
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := icp.Options{Method: icp.FlowSensitive, PropagateFloats: true, Workers: w}
			for i := 0; i < b.N; i++ {
				icp.Analyze(ctx, opts)
			}
		})
	}
}

// largestProgen is the load-phase benchmark source: the largest
// deterministic progen program (241 procedures, ~160 KB). The sharded
// load passes fan over every procedure during lowering, so this is
// where front-end parallelism has the most work to hide; the seed is
// fixed so the alloc gate's numbers stay comparable across runs.
func largestProgen() (name, src string) {
	return "progen-large.mf", progen.Generate(progen.Config{
		Seed: 20260805, Procs: 240, Globals: 12, AllowFloats: true, MaxStmts: 28,
	})
}

// BenchmarkLoad measures the serial (workers=1) load pipeline — parse
// through SSA prebuild — on the largest progen program.
func BenchmarkLoad(b *testing.B) {
	name, src := largestProgen()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fsicp.LoadWith(name, src, fsicp.LoadOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadParallel compares worker counts for the sharded load
// passes (per-procedure lowering, alias partners, MOD/REF collection,
// clobbers, SSA prebuild). Parse and sem stay serial, as do the
// numbering epilogue and the interprocedural fixpoints, so the
// attainable speedup is bounded by that serial fraction (Amdahl); on a
// multi-core machine workers=4 should still clearly beat workers=1.
// The result is byte-identical for every worker count (the load
// determinism test asserts that).
func BenchmarkLoadParallel(b *testing.B) {
	name, src := largestProgen()
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fsicp.LoadWith(name, src, fsicp.LoadOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColdEndToEnd measures a full cold run — sharded load plus
// flow-sensitive analysis — the way cmd/fsicp experiences it, with one
// worker bound governing both phases. The SSA prebuilt during load is
// consumed by the analysis's ssa pass, so the prebuild cost here is
// not paid twice.
func BenchmarkColdEndToEnd(b *testing.B) {
	name, src := largestProgen()
	w := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := fsicp.LoadWith(name, src, fsicp.LoadOptions{Workers: w})
		if err != nil {
			b.Fatal(err)
		}
		prog.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true, Workers: w})
	}
}

// BenchmarkColdWarmDisk measures the analysis phase of a process that
// starts with an empty in-memory cache but a warm persistent store —
// the cold-start scenario Config.CacheDir exists for. A prewarm run
// populates the store once; each iteration then reloads the program
// from source (outside the timer — BenchmarkColdEndToEnd prices the
// load) and analyses it with only the disk layer warm, so the timed
// region is exactly what the persistent store can accelerate: it must
// beat the analysis share of BenchmarkColdEndToEnd (its ns/op minus
// BenchmarkLoad's) by at least 2x.
func BenchmarkColdWarmDisk(b *testing.B) {
	name, src := largestProgen()
	w := runtime.GOMAXPROCS(0)
	dir := b.TempDir()
	cfg := fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true, Workers: w, CacheDir: dir}
	prewarm, err := fsicp.LoadWith(name, src, fsicp.LoadOptions{Workers: w})
	if err != nil {
		b.Fatal(err)
	}
	if prewarm.Analyze(cfg).CacheStats().DiskWrites == 0 {
		b.Fatal("prewarm run wrote nothing to the store")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		prog, err := fsicp.LoadWith(name, src, fsicp.LoadOptions{Workers: w})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		a := prog.Analyze(cfg)
		if i == 0 && a.CacheStats().DiskHits == 0 {
			b.Fatal("warm run hit nothing on disk")
		}
	}
}
