// Command progen writes a generated multi-module MiniFort corpus to a
// directory, for scale-testing the fsicp pipeline.
//
//	progen -o corpusdir [flags]
//
//	-o dir       output directory (required; created if missing)
//	-seed N      generator seed (default 1)
//	-modules N   module count (default 8)
//	-procs N     procedures per module (default 32)
//	-globals N   global scalars (default 6)
//	-blockdata N block-data constants per module (default 12)
//	-scc N       ring size per module — the call-graph SCC (default 3)
//	-fanout N    cross-module calls from each module's hub (default 8)
//	-stmts N     max filler statements per procedure (default 6)
//	-floats      allow real-typed variables and literals
//
// The corpus is one main.mf root ("program" unit) plus one m%04d.mf
// file per module, and a corpus.json manifest naming them in load
// order. Total procedures = modules × procs + 1 (main). The call
// topology is cyclic (one wrap-around back edge per module ring) but
// terminates by construction, so the corpus both analyses and runs.
//
//	progen -o /tmp/c -modules 64 -procs 160   # ≈10k procedures
//	fsicp -stats /tmp/c
package main

import (
	"flag"
	"fmt"
	"os"

	"fsicp/internal/progen"
)

func main() {
	out := flag.String("o", "", "output directory (required)")
	seed := flag.Int64("seed", 1, "generator seed")
	modules := flag.Int("modules", 0, "module count (0 = default 8)")
	procs := flag.Int("procs", 0, "procedures per module (0 = default 32)")
	globals := flag.Int("globals", 0, "global scalars (0 = default 6)")
	blockdata := flag.Int("blockdata", 0, "block-data constants per module (0 = default 12)")
	scc := flag.Int("scc", 0, "ring size per module (0 = default 3)")
	fanout := flag.Int("fanout", 0, "cross-module hub fan-out (0 = default 8)")
	stmts := flag.Int("stmts", 0, "max filler statements per procedure (0 = default 6)")
	floats := flag.Bool("floats", false, "allow real-typed variables and literals")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "progen: -o dir is required")
		flag.Usage()
		os.Exit(2)
	}
	files, m := progen.GenerateModules(progen.ModuleConfig{
		Seed:           *seed,
		Modules:        *modules,
		ProcsPerModule: *procs,
		Globals:        *globals,
		BlockData:      *blockdata,
		SCCSize:        *scc,
		FanOut:         *fanout,
		MaxStmts:       *stmts,
		AllowFloats:    *floats,
	})
	if err := progen.WriteCorpus(*out, files, m); err != nil {
		fmt.Fprintf(os.Stderr, "progen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d files (%d procedures, %d globals) to %s\n",
		len(files), m.Procs, m.Globals, *out)
}
