package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	fsicp "fsicp"
	"fsicp/internal/report"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestJSONReportGolden pins the -json output shape: the report must be
// byte-identical across runs (it carries no timings) and across worker
// counts, and any intentional change to the encoding must update the
// golden file (go test ./cmd/fsicp -update).
func TestJSONReportGolden(t *testing.T) {
	src, err := os.ReadFile("../../testdata/programs/constants.mf")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := fsicp.Load("constants.mf", string(src))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fsicp.Config{
		Method:          fsicp.FlowSensitive,
		PropagateFloats: true,
		ReturnConstants: true,
		Workers:         1,
	}
	got, err := report.Build(prog, prog.Analyze(cfg), cfg).Encode()
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run: go test ./cmd/fsicp -update)", err)
	}
	if string(got) != string(want) {
		t.Errorf("JSON report drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The report must not depend on the worker count.
	cfg.Workers = 8
	again, err := report.Build(prog, prog.Analyze(cfg), cfg).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(got) {
		t.Error("JSON report differs between worker counts")
	}
}
