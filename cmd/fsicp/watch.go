package main

import (
	"fmt"
	"os"
	"time"

	fsicp "fsicp"
	"fsicp/internal/resilience"
)

// watchBackoff controls the retry schedule for transient file errors
// (editor save races, the file briefly missing during an atomic
// rename, permission flaps). Reads are retried with doubling delays up
// to watchMaxBackoff; the loop never gives up — watch mode's contract
// is to outlive anything the filesystem does to the file. The schedule
// itself is the shared resilience.Backoff, the same one the daemon's
// Retry-After computation uses.
const (
	watchInitialBackoff = 100 * time.Millisecond
	watchMaxBackoff     = 5 * time.Second
)

// watchLoop re-analyses the file whenever its content changes, through
// one incremental Session per run of the command, printing only the
// constant deltas each version introduces plus the reuse achieved.
// It polls (no inotify dependency) and never returns.
//
// The session's loads run the sharded pipeline under cfg.Workers; with
// stats set, every version prints the per-pass timing table, where
// load-pass reuse (driver.Memo hits) shows up as "cached=…" notes and
// the sharded passes carry their "shards=N workers=M" fan-out.
//
// Failure model: a read error or a program that fails to load is
// always transient — the loop reports it once per new failure,
// backs off, and keeps the last good session (if any) alive so the
// next successful save resumes incremental analysis from it.
func watchLoop(name string, cfg fsicp.Config, stats bool, interval time.Duration) {
	var (
		sess      *fsicp.Session
		last      []fsicp.Constant
		lastElims []fsicp.ProcElimination
		lastSrc   string
		haveSrc   bool
		backoff   = resilience.NewBackoff(watchInitialBackoff, watchMaxBackoff)
		lastErr   string
	)

	// report prints an error only when it differs from the previous
	// one, so a persistent failure doesn't flood the terminal while the
	// loop retries.
	report := func(err error) {
		if msg := err.Error(); msg != lastErr {
			fmt.Fprintf(os.Stderr, "fsicp: %v (watching for recovery)\n", err)
			lastErr = msg
		}
	}
	recovered := func() {
		if lastErr != "" {
			fmt.Fprintf(os.Stderr, "fsicp: recovered\n")
			lastErr = ""
		}
		backoff.Reset()
	}

	fmt.Printf("watching %s (%s)\n", name, cfg.Method)
	for {
		b, err := os.ReadFile(name)
		if err != nil {
			report(err)
			time.Sleep(backoff.Next())
			continue
		}
		src := string(b)
		if haveSrc && src == lastSrc {
			// Unchanged content: the read succeeded, so reset the read
			// backoff — but a standing parse/sem error on this content
			// is not recovered until the content changes.
			backoff.Reset()
			time.Sleep(interval)
			continue
		}

		if sess == nil {
			// No good version yet: (re)try to open the session. A parse
			// or semantic error is transient like any other — the next
			// save may fix it.
			s, err := fsicp.NewSessionWith(name, src, fsicp.LoadOptions{Workers: cfg.Workers})
			if err != nil {
				lastSrc, haveSrc = src, true
				report(err)
				time.Sleep(interval)
				continue
			}
			sess = s
			recovered()
			lastSrc, haveSrc = src, true
			a := sess.Analyze(cfg)
			printDegradations(a.Degradations())
			printConstants(a.Constants())
			last = a.Constants()
			lastElims = a.Eliminations()
			printEliminations(lastElims)
			if stats {
				fmt.Print(a.StatsTable())
			}
			time.Sleep(interval)
			continue
		}

		lastSrc, haveSrc = src, true
		if _, err := sess.Update(src); err != nil {
			// Keep the previous good version; the next edit may fix it.
			report(err)
			time.Sleep(interval)
			continue
		}
		recovered()
		a := sess.Analyze(cfg)
		cur := a.Constants()
		reused, hits, misses := a.Incremental()
		fmt.Printf("-- v%d: reused %d procedures, value cache %d/%d\n",
			sess.Version(), reused, hits, hits+misses)
		printDegradations(a.Degradations())
		ds := fsicp.DiffConstants(last, cur)
		if len(ds) == 0 {
			fmt.Println("   no constant changes")
		}
		for _, d := range ds {
			fmt.Printf("   %s\n", d)
		}
		// Elimination deltas: what the edit changed about how much the
		// fold pass could now delete (a non-mutating preview, so the
		// session's program is untouched).
		curElims := a.Eliminations()
		for _, d := range fsicp.DiffEliminations(lastElims, curElims) {
			fmt.Printf("   %s\n", d)
		}
		lastElims = curElims
		if stats {
			fmt.Print(a.StatsTable())
		}
		last = cur
		time.Sleep(interval)
	}
}

// printEliminations summarises the fold pass's eliminable instruction
// and branch counts for the initial version; later versions print only
// deltas.
func printEliminations(es []fsicp.ProcElimination) {
	instrs, branches := 0, 0
	for _, e := range es {
		instrs += e.Instrs
		branches += e.Branches
	}
	fmt.Printf("eliminable: %d instructions, %d branches across %d procedures\n",
		instrs, branches, len(es))
}
