package main

import (
	"fmt"
	"os"
	"time"

	fsicp "fsicp"
)

// watchLoop re-analyses the file whenever its content changes, through
// one incremental Session per run of the command, printing only the
// constant deltas each version introduces plus the reuse achieved.
// It polls (no inotify dependency) and never returns.
func watchLoop(name string, cfg fsicp.Config, interval time.Duration) {
	src, err := os.ReadFile(name)
	if err != nil {
		fail("%v", err)
	}
	sess, err := fsicp.NewSession(name, string(src))
	if err != nil {
		fail("%v", err)
	}
	a := sess.Analyze(cfg)
	fmt.Printf("watching %s (%s)\n", name, cfg.Method)
	printConstants(a.Constants())
	last := a.Constants()
	lastSrc := string(src)

	for {
		time.Sleep(interval)
		b, err := os.ReadFile(name)
		if err != nil || string(b) == lastSrc {
			continue
		}
		lastSrc = string(b)
		if _, err := sess.Update(lastSrc); err != nil {
			// Keep the previous good version; the next edit may fix it.
			fmt.Fprintf(os.Stderr, "fsicp: %v\n", err)
			continue
		}
		a := sess.Analyze(cfg)
		cur := a.Constants()
		reused, hits, misses := a.Incremental()
		fmt.Printf("-- v%d: reused %d procedures, value cache %d/%d\n",
			sess.Version(), reused, hits, hits+misses)
		ds := fsicp.DiffConstants(last, cur)
		if len(ds) == 0 {
			fmt.Println("   no constant changes")
		}
		for _, d := range ds {
			fmt.Printf("   %s\n", d)
		}
		last = cur
	}
}
