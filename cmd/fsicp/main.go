// Command fsicp analyses a MiniFort program with the paper's
// interprocedural constant propagation methods.
//
//	fsicp [flags] file.mf
//	fsicp [flags] corpusdir/
//
// A directory argument names a multi-file corpus: the files listed by
// a progen manifest (corpus.json) when present, otherwise every *.mf
// file in lexical order, with exactly one "program" unit among them.
//
//	-method fs|fi|literal|intra|passthrough|polynomial
//	        analysis to run (default fs)
//	-floats propagate floating-point constants (default true)
//	-returns enable the return-constant extension (fs only)
//	-metrics print the paper's call-site and entry metrics
//	-subst   print the substitution counts (Table 5 metric)
//	-dump-ir print the program IR
//	-cg      print the call graph with back edges marked
//	-run     execute the program with the reference interpreter
//	-transform apply the solution to the IR and print the result
//	-optimize run the full SSA optimization pipeline (constant folding,
//	         copy propagation, dead-store elimination, CSE, LICM) and
//	         print the per-pass report
//	         and the transformed IR; with -json the report is attached
//	         under "optimize"
//	-opt-passes p1,p2 restrict -optimize to a pass subset
//	         (fold, copyprop, dse, cse, licm)
//	-stats   print the per-pass timing table (load + analysis passes),
//	         with live-heap and GC-cycle notes on the load passes
//	         and, when -cache-dir is set, a cache hit/miss summary
//	-cache-dir d keep a persistent summary cache in directory d: warm
//	         runs of the same program and configuration reuse on-disk
//	         procedure summaries instead of re-solving them. The cache
//	         affects time only — reports are byte-identical with or
//	         without it, even when cache files are corrupted
//	-workers N bound both the sharded load passes (per-procedure
//	         lowering, alias/MOD/REF collection, clobbers, SSA prebuild)
//	         and the per-level analysis concurrency (0 = GOMAXPROCS)
//	-timeout D wall-clock deadline for the analysis; procedures still
//	         unfinished at expiry degrade (soundly) to the
//	         flow-insensitive solution and are listed in the output
//	-fuel N  per-procedure step budget; a procedure exceeding it
//	         degrades to the flow-insensitive solution
//	-json    emit the analysis as machine-readable JSON
//	-watch   keep running: re-analyse incrementally whenever the file
//	         changes, printing only the constant and eliminable-code
//	         deltas and the reuse the incremental engine achieved
//	-cpuprofile f  write a pprof CPU profile of the run to f
//	-memprofile f  write a pprof heap profile to f on exit
//
// With no file argument, fsicp reads from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	fsicp "fsicp"
	"fsicp/internal/bench"
	"fsicp/internal/report"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fsicp: "+format+"\n", args...)
	os.Exit(1)
}

// icpConfig maps a -method value to an ICP configuration; ok is false
// for the jump-function baselines and unknown methods.
func icpConfig(method string, floats, returns bool, workers int, timeout time.Duration, fuel int, cacheDir string) (fsicp.Config, bool) {
	cfg := fsicp.Config{PropagateFloats: floats, ReturnConstants: returns, Workers: workers, Timeout: timeout, Fuel: fuel, CacheDir: cacheDir}
	switch method {
	case "fi":
		cfg.Method = fsicp.FlowInsensitive
	case "iter":
		cfg.Method = fsicp.FlowSensitiveIterative
	case "fs":
		cfg.Method = fsicp.FlowSensitive
	default:
		return cfg, false
	}
	return cfg, true
}

func main() {
	method := flag.String("method", "fs", "fs|fi|iter|literal|intra|passthrough|polynomial")
	floats := flag.Bool("floats", true, "propagate floating-point constants")
	returns := flag.Bool("returns", false, "enable the return-constant extension")
	showMetrics := flag.Bool("metrics", false, "print call-site and entry metrics")
	showSubst := flag.Bool("subst", false, "print substitution counts")
	annotate := flag.Bool("annotate", false, "print a per-procedure constant summary")
	showUse := flag.Bool("use", false, "print flow-sensitive USE sets")
	dumpIR := flag.Bool("dump-ir", false, "print the program IR")
	dumpCG := flag.Bool("cg", false, "print the call graph")
	run := flag.Bool("run", false, "execute the program")
	doTransform := flag.Bool("transform", false, "apply the solution and print the transformed IR")
	doOptimize := flag.Bool("optimize", false, "run the SSA optimization pipeline and print the per-pass report and transformed IR")
	optPasses := flag.String("opt-passes", "", "comma-separated pipeline passes for -optimize: fold,copyprop,dse,cse,licm (empty = all)")
	doInline := flag.Bool("inline", false, "inline all non-recursive calls before analysing")
	showStats := flag.Bool("stats", false, "print the per-pass timing table")
	workers := flag.Int("workers", 0, "workers for the sharded load passes and per wavefront level (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit the analysis as JSON (fs/fi/iter only)")
	watch := flag.Bool("watch", false, "re-analyse incrementally whenever the file changes, printing constant deltas")
	timeout := flag.Duration("timeout", 0, "analysis deadline; procedures unfinished at expiry degrade to the flow-insensitive solution (0 = none)")
	fuel := flag.Int("fuel", 0, "per-procedure step budget; a procedure exceeding it degrades to the flow-insensitive solution (0 = unlimited)")
	cacheDir := flag.String("cache-dir", "", "persistent summary cache directory; warm runs reuse on-disk procedure summaries (results are byte-identical with or without it)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := bench.StartCPUProfile(*cpuprofile)
	if err != nil {
		fail("%v", err)
	}
	// fail() exits without running deferred calls, so flush the profiles
	// explicitly on every non-error return path via exit.
	exit := func() {
		stopProf()
		if err := bench.WriteHeapProfile(*memprofile); err != nil {
			fail("%v", err)
		}
	}
	defer exit()

	if *watch {
		// Watch mode owns its own file IO (with retry), so a file that
		// is momentarily unreadable at startup is not fatal here.
		if flag.NArg() == 0 {
			fail("-watch needs a file argument")
		}
		cfg, ok := icpConfig(*method, *floats, *returns, *workers, *timeout, *fuel, *cacheDir)
		if !ok {
			fail("-watch supports the fs|fi|iter methods, not %q", *method)
		}
		cfg.MemStats = *showStats
		watchLoop(flag.Arg(0), cfg, *showStats, 500*time.Millisecond)
	}

	loadOpts := fsicp.LoadOptions{Workers: *workers, MemStats: *showStats}
	var prog *fsicp.Program
	name := "<stdin>"
	if flag.NArg() > 0 {
		name = flag.Arg(0)
	}
	if fi, statErr := os.Stat(name); statErr == nil && fi.IsDir() {
		// A directory argument is a multi-file corpus (progen manifest or
		// every *.mf in lexical order).
		prog, err = fsicp.LoadDir(name, loadOpts)
	} else {
		var src []byte
		if flag.NArg() > 0 {
			src, err = os.ReadFile(name)
		} else {
			src, err = io.ReadAll(os.Stdin)
		}
		if err != nil {
			fail("%v", err)
		}
		prog, err = fsicp.LoadWith(name, string(src), loadOpts)
	}
	if err != nil {
		fail("%v", err)
	}
	if !*jsonOut {
		fmt.Println(prog)
	}

	if *doInline {
		n, rec, growth := prog.Inline(4)
		fmt.Printf("inlined %d call sites (%d skipped as recursive), CFG growth %.2fx\n", n, rec, growth)
	}

	if *dumpCG {
		fmt.Print(prog.DumpCallGraph())
	}
	if *showUse {
		use := prog.Use()
		for _, name := range prog.Procedures() {
			fmt.Printf("USE(%s) = %v\n", name, use[name])
		}
	}
	if *dumpIR {
		fmt.Print(prog.DumpIR())
	}

	if cfg, ok := icpConfig(*method, *floats, *returns, *workers, *timeout, *fuel, *cacheDir); ok {
		cfg.MemStats = *showStats
		a := prog.Analyze(cfg)
		if *jsonOut {
			rep := report.Build(prog, a, cfg)
			if *doOptimize {
				opt, err := a.Optimize(parseOptPasses(*optPasses))
				if err != nil {
					fail("%v", err)
				}
				rep.Optimize = &opt
			}
			b, err := rep.Encode()
			if err != nil {
				fail("%v", err)
			}
			os.Stdout.Write(b)
			return
		}
		fmt.Printf("%s analysis in %v", cfg.Method, a.Duration())
		if n := a.UsedFlowInsensitiveFallback(); n > 0 {
			fmt.Printf(" (%d back edges used the flow-insensitive fallback)", n)
		}
		fmt.Println()
		printDegradations(a.Degradations())
		printConstants(a.Constants())
		if *showMetrics {
			cs := a.CallSiteMetrics()
			en := a.EntryMetrics()
			fmt.Printf("call sites: %d args, %d immediate, %d constant; globals: %d candidates, %d pairs (%d visible)\n",
				cs.Args, cs.Imm, cs.ConstArgs, cs.GlobCand, cs.GlobPairs, cs.GlobVis)
			fmt.Printf("entries: %d formals, %d constant; %d procedures; %d constant global entries\n",
				en.Formals, en.ConstFormals, en.Procs, en.GlobalEntries)
		}
		if *showSubst {
			s, f, u := a.Substitutions()
			fmt.Printf("substitutions: %d (folded branches %d, unreachable blocks %d)\n", s, f, u)
		}
		if *annotate {
			fmt.Print(a.AnnotatedListing())
		}
		if *doTransform && !*doOptimize {
			rep := a.ApplyTransform()
			fmt.Printf("transform: %d entry assignments, %d folded instructions, %d folded branches, %d removed blocks\n",
				rep.EntryAssignments, rep.FoldedInstrs, rep.FoldedBranches, rep.RemovedBlocks)
			fmt.Print(prog.DumpIR())
		}
		if *doOptimize {
			rep, err := a.Optimize(parseOptPasses(*optPasses))
			if err != nil {
				fail("%v", err)
			}
			for _, p := range rep.Passes {
				fmt.Printf("optimize [%s]: %d entry assignments, %d folded, %d branches, %d blocks removed, %d instrs removed, %d copies propagated, %d dead stores, %d cse, %d hoisted\n",
					p.Pass, p.EntryAssignments, p.FoldedInstrs, p.FoldedBranches,
					p.RemovedBlocks, p.RemovedInstrs, p.CopiesPropagated, p.DeadStores, p.CSEReplaced, p.HoistedConsts)
			}
			fmt.Printf("optimize: %d instructions eliminated (%d removed outright), %d branches eliminated\n",
				rep.EliminatedInstrs(), rep.RemovedInstrs, rep.FoldedBranches)
			fmt.Print(prog.DumpIR())
		}
		if *showStats {
			fmt.Print(a.StatsTable())
			if cs := a.CacheStats(); !cs.Empty() {
				fmt.Printf("cache: mem %d/%d hits, disk %d/%d hits, %d writes, %d evicted, %d corrupt\n",
					cs.MemHits, cs.MemHits+cs.MemMisses, cs.DiskHits, cs.DiskHits+cs.DiskMisses,
					cs.DiskWrites, cs.Evictions, cs.Corrupt)
			}
		}
	} else if kind, ok := map[string]fsicp.JumpFunctionKind{
		"literal": fsicp.Literal, "intra": fsicp.IntraConstant,
		"passthrough": fsicp.PassThrough, "polynomial": fsicp.Polynomial,
	}[*method]; ok {
		a := prog.AnalyzeJumpFunctions(kind)
		fmt.Printf("%s jump functions\n", *method)
		printConstants(a.Constants())
		if *showSubst {
			fmt.Printf("substitutions: %d\n", a.Substitutions())
		}
	} else {
		fail("unknown method %q", *method)
	}

	if *run {
		r := prog.Run(nil)
		fmt.Print("--- program output ---\n", r.Output)
		if r.Err != nil {
			fail("runtime error: %v", r.Err)
		}
	}
}

// parseOptPasses turns the -opt-passes list into pass options; an
// empty list selects every pass.
func parseOptPasses(list string) fsicp.OptimizeOptions {
	if list == "" {
		return fsicp.AllOptimizations()
	}
	var opts fsicp.OptimizeOptions
	for _, name := range strings.Split(list, ",") {
		switch strings.TrimSpace(name) {
		case "fold":
			opts.Fold = true
		case "copyprop":
			opts.CopyProp = true
		case "dse":
			opts.DSE = true
		case "cse":
			opts.CSE = true
		case "licm":
			opts.LICM = true
		case "":
		default:
			fail("unknown optimization pass %q (want fold, copyprop, dse, cse, licm)", name)
		}
	}
	return opts
}

// printDegradations reports the procedures that fell back to the
// flow-insensitive solution. The results remain sound — degradation
// loses precision only — so this is a notice, not an error.
func printDegradations(ds []fsicp.Degradation) {
	if len(ds) == 0 {
		return
	}
	fmt.Printf("%d degradation(s) — affected procedures use the flow-insensitive solution:\n", len(ds))
	for _, d := range ds {
		fmt.Printf("  %s\n", d)
	}
}

func printConstants(cs []fsicp.Constant) {
	if len(cs) == 0 {
		fmt.Println("no interprocedural constants found")
		return
	}
	fmt.Printf("%d interprocedural constants:\n", len(cs))
	for _, c := range cs {
		fmt.Printf("  %-20s %-12s = %-10s (%s)\n", c.Proc, c.Var, c.Value, c.Kind)
	}
}
