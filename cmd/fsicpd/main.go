// Command fsicpd is the analysis-as-a-service daemon: a long-running
// HTTP+JSON server over the fsicp library that keeps a bounded pool of
// warm incremental sessions and answers analyze/update/query requests
// with the same report encoding `fsicp -json` prints.
//
//	fsicpd -addr :8723 -cache /var/cache/fsicp
//
// Endpoints: POST /analyze, POST /update, GET /query, GET /healthz,
// GET /readyz, GET /statz. See internal/serve for the serving
// discipline (admission control, request coalescing, load-shed-to-FI,
// graceful drain) and DESIGN.md for the architecture.
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops
// admitting work (503 + Retry-After), finishes what is in flight
// (every request is deadline-bounded, so the drain is finite), flushes
// the persistent cache's generation stamp, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fsicp/internal/serve"
)

// options is everything the flag set configures: the serving policy
// plus the process-level knobs main needs.
type options struct {
	serve.Config
	addr         string
	drainTimeout time.Duration
}

// parseFlags builds the daemon options from args. Split from main so
// the flag surface is unit-testable.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("fsicpd", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", ":8723", "listen address")
	fs.IntVar(&o.PoolSize, "pool", 0, "warm sessions kept resident (0 = 8)")
	fs.IntVar(&o.Concurrency, "concurrency", 0, "analyses executing at once (0 = GOMAXPROCS)")
	fs.IntVar(&o.MaxQueue, "queue", 0, "requests waiting for a slot before 429 (0 = 64, negative = none)")
	fs.IntVar(&o.ShedQueue, "shed-queue", 0, "queue depth past which flow-sensitive requests shed to FI (0 = queue/2, negative = off)")
	fs.DurationVar(&o.ShedLatency, "shed-latency", 0, "latency EWMA past which requests shed to FI (0 = off)")
	fs.DurationVar(&o.DefaultTimeout, "timeout", 0, "default per-request analysis deadline (0 = 10s)")
	fs.DurationVar(&o.MaxTimeout, "max-timeout", 0, "clamp on client-supplied deadlines (0 = 30s)")
	fs.IntVar(&o.Fuel, "fuel", 0, "default per-procedure fuel bound (0 = unlimited)")
	fs.StringVar(&o.CacheDir, "cache", "", "persistent summary cache directory (empty = memory only)")
	fs.IntVar(&o.Workers, "workers", 0, "per-analysis worker fan-out (0 = GOMAXPROCS)")
	fs.BoolVar(&o.AllowFaults, "allow-faults", false, "accept request-level fault injection (chaos testing)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "bound on the graceful drain at shutdown")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return o, nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	srv := serve.New(o.Config)
	httpSrv := &http.Server{Addr: o.addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "fsicpd: serving on %s\n", o.addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "fsicpd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "fsicpd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "fsicpd: drain incomplete: %v\n", err)
	}
	httpSrv.Shutdown(dctx)
	fmt.Fprintln(os.Stderr, "fsicpd: stopped")
}
