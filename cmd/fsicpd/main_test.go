package main

import (
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8723" {
		t.Errorf("default addr = %q", o.addr)
	}
	if o.drainTimeout != 30*time.Second {
		t.Errorf("default drain timeout = %v", o.drainTimeout)
	}
	if o.AllowFaults {
		t.Error("fault injection enabled by default")
	}
	if o.CacheDir != "" {
		t.Errorf("default cache dir = %q", o.CacheDir)
	}
}

func TestParseFlagsFull(t *testing.T) {
	o, err := parseFlags([]string{
		"-addr", "127.0.0.1:9000",
		"-pool", "4",
		"-concurrency", "2",
		"-queue", "8",
		"-shed-queue", "3",
		"-shed-latency", "250ms",
		"-timeout", "2s",
		"-max-timeout", "5s",
		"-fuel", "1000",
		"-cache", "/tmp/fsicpd-cache",
		"-workers", "2",
		"-allow-faults",
		"-drain-timeout", "10s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:9000" || o.PoolSize != 4 || o.Concurrency != 2 ||
		o.MaxQueue != 8 || o.ShedQueue != 3 || o.ShedLatency != 250*time.Millisecond ||
		o.DefaultTimeout != 2*time.Second || o.MaxTimeout != 5*time.Second ||
		o.Fuel != 1000 || o.CacheDir != "/tmp/fsicpd-cache" || o.Workers != 2 ||
		!o.AllowFaults || o.drainTimeout != 10*time.Second {
		t.Errorf("parsed options: %+v", o)
	}
}

func TestParseFlagsRejectsGarbage(t *testing.T) {
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"stray"}); err == nil {
		t.Error("positional argument accepted")
	}
}
