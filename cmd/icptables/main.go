// Command icptables regenerates every table and figure of the paper's
// evaluation section on the synthetic SPEC suite:
//
//	icptables -table all      # everything (default)
//	icptables -table 1        # Table 1: call-site candidates, SPECfp92
//	icptables -table 2        # Table 2: propagated constants, SPECfp92
//	icptables -table 3        # Table 3: call-site candidates, first release, floats off
//	icptables -table 4        # Table 4: propagated constants, first release, floats off
//	icptables -table 5        # Table 5: intraprocedural substitutions
//	icptables -table fig1     # Figure 1 per-method comparison
//	icptables -table time     # FI vs FS analysis time
//	icptables -table backedge # back-edge ratio sweep (§3.2)
//	icptables -table methods  # every method and baseline, run concurrently
//	icptables -table opt      # optimization pipeline: instrs/branches eliminated per method
//	icptables -table copyprop # copy-prop vs const-prop experiment (fold/copyprop/both)
//	icptables -json           # emit the opt table as JSON (only with -table opt)
//	icptables -stats          # also print the aggregated per-pass timing table
//	icptables -cache-dir d    # persistent summary cache for -table methods:
//	                          # warm runs reuse on-disk procedure summaries
//	                          # (identical precision columns, faster timings)
//	icptables -cpuprofile f   # write a pprof CPU profile of the run to f
//	icptables -memprofile f   # write a pprof heap profile to f on exit
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"fsicp/internal/bench"
	"fsicp/internal/driver"
	"fsicp/internal/tables"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1,2,3,4,5,fig1,time,backedge,inline,clone,iter,use,methods,opt,copyprop,all")
	iters := flag.Int("iters", 3, "timing iterations for -table time")
	depth := flag.Int("depth", 8, "chain depth for -table backedge")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (only with -table opt)")
	stats := flag.Bool("stats", false, "print the aggregated per-pass timing table")
	timeout := flag.Duration("timeout", 0, "deadline for the methods matrix; analyses unfinished at expiry degrade to the flow-insensitive solution (0 = none)")
	cacheDir := flag.String("cache-dir", "", "persistent summary cache directory for the methods matrix; warm runs reuse on-disk procedure summaries (precision columns are identical, only timings change)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "icptables:", err)
		os.Exit(1)
	}

	stopProf, err := bench.StartCPUProfile(*cpuprofile)
	if err != nil {
		fail(err)
	}
	// fail() exits without running deferred calls, so the profiles only
	// flush on successful runs — a failed table regeneration leaves no
	// partial profile behind.
	defer func() {
		stopProf()
		if err := bench.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "icptables:", err)
			os.Exit(1)
		}
	}()

	if *jsonOut && *table != "opt" {
		fail(fmt.Errorf("-json is only valid with -table opt"))
	}

	gctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		gctx, cancel = context.WithTimeout(gctx, *timeout)
		defer cancel()
	}

	var tr *driver.Trace
	if *stats {
		tr = driver.NewTrace()
	}

	var spec, first *tables.Suite
	needSpec := map[string]bool{"1": true, "2": true, "time": true, "all": true}
	needFirst := map[string]bool{"3": true, "4": true, "5": true, "all": true}
	if needSpec[*table] {
		if spec, err = tables.LoadSuiteTraced(bench.SPECfp92(), true, tr); err != nil {
			fail(err)
		}
	}
	if needFirst[*table] {
		if first, err = tables.LoadSuiteTraced(bench.FirstRelease(), false, tr); err != nil {
			fail(err)
		}
	}

	show := func(s string) { fmt.Println(s) }
	switch *table {
	case "1":
		show(spec.CallSiteTable("Table 1: interprocedural call site constant candidates (SPECfp92)"))
	case "2":
		show(spec.EntryTable("Table 2: interprocedural propagated constants (SPECfp92)"))
	case "3":
		show(first.CallSiteTable("Table 3: call site constant candidates (first-release SPEC, floats off)"))
	case "4":
		show(first.EntryTable("Table 4: propagated constants (first-release SPEC, floats off)"))
	case "5":
		show(first.SubstitutionTable("Table 5: intraprocedural substitutions (first-release SPEC, floats off)"))
	case "fig1":
		s, err := tables.Figure1Table()
		if err != nil {
			fail(err)
		}
		show(s)
	case "time":
		show(spec.TimingTable(*iters))
	case "backedge":
		show(tables.BackEdgeSweep(*depth))
	case "inline":
		s, err := tables.InlineTable(bench.FirstRelease(), false)
		if err != nil {
			fail(err)
		}
		show(s)
	case "clone":
		s, err := tables.CloneTable(bench.FirstRelease(), false)
		if err != nil {
			fail(err)
		}
		show(s)
	case "iter":
		s, err := tables.IterativeTable(bench.FirstRelease(), false)
		if err != nil {
			fail(err)
		}
		show(s)
	case "use":
		s, err := tables.UseTable(bench.SPECfp92())
		if err != nil {
			fail(err)
		}
		show(s)
	case "methods":
		s, err := tables.MethodMatrixTableCacheCtx(gctx, bench.SPECfp92(), true, *cacheDir)
		if err != nil {
			fail(err)
		}
		show(s)
	case "opt":
		if *jsonOut {
			b, err := tables.OptimizeJSON(bench.SPECfp92(), true)
			if err != nil {
				fail(err)
			}
			os.Stdout.Write(b)
			break
		}
		s, err := tables.OptimizeTable(bench.SPECfp92(), true)
		if err != nil {
			fail(err)
		}
		show(s)
	case "copyprop":
		s, err := tables.CopyPropTable(bench.SPECfp92(), true)
		if err != nil {
			fail(err)
		}
		show(s)
	case "all":
		s, err := tables.Figure1Table()
		if err != nil {
			fail(err)
		}
		show(s)
		show(spec.CallSiteTable("Table 1: interprocedural call site constant candidates (SPECfp92)"))
		show(spec.EntryTable("Table 2: interprocedural propagated constants (SPECfp92)"))
		show(first.CallSiteTable("Table 3: call site constant candidates (first-release SPEC, floats off)"))
		show(first.EntryTable("Table 4: propagated constants (first-release SPEC, floats off)"))
		show(first.SubstitutionTable("Table 5: intraprocedural substitutions (first-release SPEC, floats off)"))
		show(spec.TimingTable(*iters))
		show(tables.BackEdgeSweep(*depth))
		s2, err := tables.InlineTable(bench.FirstRelease(), false)
		if err != nil {
			fail(err)
		}
		show(s2)
		s3, err := tables.CloneTable(bench.FirstRelease(), false)
		if err != nil {
			fail(err)
		}
		show(s3)
		s4, err := tables.IterativeTable(bench.FirstRelease(), false)
		if err != nil {
			fail(err)
		}
		show(s4)
		s5, err := tables.UseTable(bench.SPECfp92())
		if err != nil {
			fail(err)
		}
		show(s5)
		s6, err := tables.MethodMatrixTableCacheCtx(gctx, bench.SPECfp92(), true, *cacheDir)
		if err != nil {
			fail(err)
		}
		show(s6)
		s7, err := tables.OptimizeTable(bench.SPECfp92(), true)
		if err != nil {
			fail(err)
		}
		show(s7)
		s8, err := tables.CopyPropTable(bench.SPECfp92(), true)
		if err != nil {
			fail(err)
		}
		show(s8)
	default:
		fail(fmt.Errorf("unknown table %q", *table))
	}

	if *stats {
		if len(tr.Passes()) == 0 {
			fmt.Println("no passes recorded (-stats instruments the suite-loading tables: 1,2,3,4,5,time,all)")
		} else {
			fmt.Println(tr.Table())
		}
	}
}
