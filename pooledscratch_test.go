package fsicp_test

import (
	"testing"

	fsicp "fsicp"
	"fsicp/internal/bench"
)

// TestPooledScratchDeterminism exercises the sync.Pool-backed SCC
// scratch across a corpus of programs: the pool hands a worker whatever
// scratch some other procedure — possibly of a *different program* —
// released a moment ago, so any state leaking through the pool
// (worklists not truncated, visited bits not reset, stale overlay
// pointers) would surface as a diverging solution on the second pass.
// Every program is analysed twice per worker count, interleaved so the
// second pass always runs against a pool warmed by unrelated work, and
// every fingerprint must match that program's cold run byte for byte.
func TestPooledScratchDeterminism(t *testing.T) {
	profiles := bench.SPECfp92()[:4]
	var progs []*fsicp.Program
	for _, p := range profiles {
		prog, err := fsicp.Load(p.Name+".mf", bench.Build(p))
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, prog)
	}
	for _, workers := range []int{1, 4} {
		cfg := fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true, ReturnConstants: true, Workers: workers}
		// Cold pass: record each program's reference fingerprint.
		want := make([]string, len(progs))
		for i, prog := range progs {
			want[i] = fingerprint(prog.Analyze(cfg))
		}
		// Warm passes: the pool now holds scratch released by every
		// program; re-analysing in a different order must change nothing.
		for pass := 0; pass < 2; pass++ {
			for k := len(progs) - 1; k >= 0; k-- {
				if got := fingerprint(progs[k].Analyze(cfg)); got != want[k] {
					t.Fatalf("workers=%d warm pass %d: %s diverged from its cold run (scratch state leaked through the pool)",
						workers, pass, profiles[k].Name)
				}
			}
		}
	}
}
