package fsicp_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fsicp/internal/progen"
	"fsicp/internal/serve"
)

// runServeSustained is the daemon's sustained-traffic benchmark: N
// concurrent clients, each driving its own warm session through an
// edit stream over the 241-procedure progen program via real HTTP.
// One op is one round — every client posts its next version and waits
// for the 200. The warmup plays one full edit cycle per client, so
// the measured ops are the daemon's steady state: incremental updates
// over a warm pool, the workload the service exists for. Shared with
// the allocation gate (gateBenchmarks), which holds the serving
// path's allocs/op to the committed BENCH_icp.json budget.
func runServeSustained(b *testing.B) {
	_, src := largestProgen()
	const clients = 4
	const streamLen = 6
	versions := make([]string, streamLen)
	versions[0] = src
	for i := 1; i < streamLen; i++ {
		versions[i] = progen.Edit(versions[i-1], int64(i))
	}

	s := serve.New(serve.Config{
		PoolSize:       clients,
		Concurrency:    2,
		MaxQueue:       4 * clients,
		ShedQueue:      -1,
		DefaultTimeout: time.Minute,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Drain(ctx)
	}()
	client := ts.Client()

	post := func(endpoint string, req serve.Request) error {
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := client.Post(ts.URL+endpoint, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			return fmt.Errorf("%s: status %d: %s", endpoint, resp.StatusCode, data)
		}
		return nil
	}
	round := func(i int) error {
		var wg sync.WaitGroup
		errs := make([]error, clients)
		for k := 0; k < clients; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				errs[k] = post("/update", serve.Request{
					Program: fmt.Sprintf("bench-%d", k),
					Source:  versions[(i+k)%streamLen],
				})
			}(k)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	for k := 0; k < clients; k++ {
		if err := post("/analyze", serve.Request{Program: fmt.Sprintf("bench-%d", k), Source: versions[0]}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < streamLen; i++ {
		if err := round(i); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := round(i + streamLen); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSustained: `go test -bench ServeSustained` entry for
// the shared harness above.
func BenchmarkServeSustained(b *testing.B) { runServeSustained(b) }
