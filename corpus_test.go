package fsicp_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	fsicp "fsicp"
)

// TestCorpus runs every program under testdata/programs, compares the
// interpreter output against the golden .out file, and then pushes each
// program through the full battery: both ICP methods, all four
// jump-function baselines, and the transformation — checking that
// transformed output still matches the golden file.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "programs", "*.mf"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus programs found: %v", err)
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".mf")
		t.Run(name, func(t *testing.T) {
			srcBytes, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			goldBytes, err := os.ReadFile(strings.TrimSuffix(file, ".mf") + ".out")
			if err != nil {
				t.Fatal(err)
			}
			src, gold := string(srcBytes), string(goldBytes)

			prog, err := fsicp.Load(file, src)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			r := prog.Run(nil)
			if r.Err != nil {
				t.Fatalf("run: %v", r.Err)
			}
			if r.Output != gold {
				t.Fatalf("output mismatch\n--- got ---\n%s--- want ---\n%s", r.Output, gold)
			}

			// Every analysis must complete; constants are incidental.
			for _, m := range []fsicp.Method{fsicp.FlowInsensitive, fsicp.FlowSensitive} {
				a := prog.Analyze(fsicp.Config{Method: m, PropagateFloats: true, ReturnConstants: m == fsicp.FlowSensitive})
				_ = a.Constants()
				_ = a.CallSiteMetrics()
				_ = a.EntryMetrics()
			}
			for _, k := range []fsicp.JumpFunctionKind{fsicp.Literal, fsicp.IntraConstant, fsicp.PassThrough, fsicp.Polynomial} {
				_ = prog.AnalyzeJumpFunctions(k).Constants()
			}

			// Optimize under the FS solution; semantics preserved for
			// every pass selection. Each selection runs on a fresh load
			// because Optimize mutates the program.
			passSets := []struct {
				name string
				opts fsicp.OptimizeOptions
			}{
				{"fold", fsicp.OptimizeOptions{Fold: true}},
				{"copyprop", fsicp.OptimizeOptions{CopyProp: true}},
				{"cse", fsicp.OptimizeOptions{CSE: true}},
				{"licm", fsicp.OptimizeOptions{LICM: true}},
				{"all", fsicp.AllOptimizations()},
			}
			for _, ps := range passSets {
				p2, err := fsicp.Load(file, src)
				if err != nil {
					t.Fatalf("%s: load: %v", ps.name, err)
				}
				a := p2.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
				if _, err := a.Optimize(ps.opts); err != nil {
					t.Fatalf("%s: optimize: %v", ps.name, err)
				}
				r2 := p2.Run(nil)
				if r2.Err != nil {
					t.Fatalf("%s: optimized run: %v", ps.name, r2.Err)
				}
				if r2.Output != gold {
					t.Fatalf("%s: optimized output mismatch\n--- got ---\n%s--- want ---\n%s", ps.name, r2.Output, gold)
				}
			}
		})
	}
}

// TestCorpusSpotChecks pins down specific analysis facts on corpus
// programs (golden constants).
func TestCorpusSpotChecks(t *testing.T) {
	load := func(name string) *fsicp.Program {
		src, err := os.ReadFile(filepath.Join("testdata", "programs", name))
		if err != nil {
			t.Fatal(err)
		}
		p, err := fsicp.Load(name, string(src))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// constants.mf: base is an unmodified block-data global; dead is
	// killed by read. emit.k receives 1 twice; chain.b gets base=1000;
	// emit2 gets (1000, 4).
	p := load("constants.mf")
	fs := p.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
	got := map[string]string{}
	for _, c := range fs.Constants() {
		got[c.Proc+"."+c.Var] = c.Value
	}
	// main passes base by reference but never references it directly,
	// so it has no main.base entry (the paper counts per-procedure
	// direct references only).
	want := map[string]string{
		"emit.k":     "1",
		"emit.base":  "1000",
		"chain.b":    "1000",
		"emit2.b":    "1000",
		"emit2.four": "4",
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("constants.mf: %s = %q, want %q (all: %v)", k, got[k], v, got)
		}
	}
	if _, ok := got["main.dead"]; ok {
		t.Error("constants.mf: dead must not be constant (read kills it)")
	}
	// FI misses emit2.four (2+2 is not a literal) but keeps base.
	fi := p.Analyze(fsicp.Config{Method: fsicp.FlowInsensitive, PropagateFloats: true})
	fiGot := map[string]string{}
	for _, c := range fi.Constants() {
		fiGot[c.Proc+"."+c.Var] = c.Value
	}
	if _, ok := fiGot["emit2.four"]; ok {
		t.Error("constants.mf: FI must not find emit2.four")
	}
	if fiGot["emit2.b"] != "1000" {
		t.Errorf("constants.mf: FI emit2.b = %q (global-constant pass-through)", fiGot["emit2.b"])
	}

	// mutual.mf: the recursive pair still yields no false constants.
	p2 := load("mutual.mf")
	fs2 := p2.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
	for _, c := range fs2.Constants() {
		if c.Var == "n" {
			t.Errorf("mutual.mf: n claimed constant (%s)", c.Value)
		}
		if c.Var == "depth" {
			t.Errorf("mutual.mf: modified global depth claimed constant")
		}
	}
}
