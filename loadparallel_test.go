package fsicp_test

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	fsicp "fsicp"
)

// loadFingerprint renders everything the front end produces — the IR
// dump, the call graph, and all seven method tables (FS, FI, iterative,
// plus the four jump-function baselines) — into one string, so loads
// with different worker counts can be compared byte-for-byte.
func loadFingerprint(prog *fsicp.Program) string {
	var b strings.Builder
	b.WriteString(prog.DumpIR())
	b.WriteString(prog.DumpCallGraph())
	for _, cfg := range []fsicp.Config{
		{Method: fsicp.FlowSensitive, PropagateFloats: true, ReturnConstants: true},
		{Method: fsicp.FlowInsensitive, PropagateFloats: true},
		{Method: fsicp.FlowSensitiveIterative, PropagateFloats: true},
	} {
		a := prog.Analyze(cfg)
		fmt.Fprintf(&b, "== %s ==\n%s", cfg.Method, fingerprint(a))
	}
	for _, kind := range []fsicp.JumpFunctionKind{
		fsicp.Literal, fsicp.IntraConstant, fsicp.PassThrough, fsicp.Polynomial,
	} {
		j := prog.AnalyzeJumpFunctions(kind)
		fmt.Fprintf(&b, "== jump %s ==\n", kind)
		for _, c := range j.Constants() {
			fmt.Fprintf(&b, "const %s.%s = %s (%s)\n", c.Proc, c.Var, c.Value, c.Kind)
		}
		fmt.Fprintf(&b, "subst %d\n", j.Substitutions())
	}
	return b.String()
}

// TestLoadDeterministicAcrossWorkers asserts the sharded load pipeline
// is invisible in the result: for every worker count the IR dump, the
// call graph, and all seven method tables are byte-identical to the
// serial load. Run under -race this also exercises the shard fan-out
// for data races.
func TestLoadDeterministicAcrossWorkers(t *testing.T) {
	name, src := largestProgen()
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		prog, err := fsicp.LoadWith(name, src, fsicp.LoadOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := loadFingerprint(prog)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d: load result diverged from workers=1", workers)
		}
	}
}

// TestLoadCancellation asserts a cancelled LoadContext fails with the
// context's error and drains every shard goroutine — nothing may keep
// lowering procedures after the caller has given up.
func TestLoadCancellation(t *testing.T) {
	name, src := largestProgen()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prog, err := fsicp.LoadContext(ctx, name, src, fsicp.LoadOptions{Workers: 4})
	if err == nil {
		t.Fatal("cancelled load succeeded")
	}
	if prog != nil {
		t.Fatal("cancelled load returned a program alongside its error")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("cancelled load error = %v, want a context.Canceled", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked by cancelled load: %d before, %d after", before, after)
	}

	// The same source still loads fine with a live context.
	if _, err := fsicp.LoadContext(context.Background(), name, src, fsicp.LoadOptions{Workers: 4}); err != nil {
		t.Fatalf("follow-up load failed: %v", err)
	}
}

// TestLoadShardNotes asserts the sharded load passes report their
// fan-out ("shards=N workers=M") in the stats, and that the rendered
// table carries the notes without breaking its row alignment.
func TestLoadShardNotes(t *testing.T) {
	name, src := largestProgen()
	prog, err := fsicp.LoadWith(name, src, fsicp.LoadOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})

	sharded := map[string]bool{"irbuild": false, "alias": false, "modref": false, "clobbers": false, "ssa": false}
	for _, st := range a.Stats() {
		if _, ok := sharded[st.Name]; !ok || st.Shards == 0 {
			continue
		}
		sharded[st.Name] = true
		if want := fmt.Sprintf("shards=%d workers=", st.Shards); !strings.Contains(st.Notes, want) {
			t.Errorf("pass %s: notes %q missing %q", st.Name, st.Notes, want)
		}
		if len(st.ShardWall) != st.Shards {
			t.Errorf("pass %s: %d shard wall times for %d shards", st.Name, len(st.ShardWall), st.Shards)
		}
	}
	for name, seen := range sharded {
		if !seen {
			t.Errorf("pass %s recorded no shards", name)
		}
	}

	table := a.StatsTable()
	if !strings.Contains(table, "shards=") {
		t.Errorf("stats table carries no shard notes:\n%s", table)
	}
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("stats table too short:\n%s", table)
	}
	// Every data row must start at the same column layout as the header
	// (left-aligned pass name, single-space separated columns) — a
	// shard note that broke the formatting would show up as a column
	// shift here.
	width := len(lines[0])
	for _, line := range lines[1:] {
		if len(line) < width-20 {
			t.Errorf("stats table row much narrower than header:\n%s", table)
			break
		}
	}
}
