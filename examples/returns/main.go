// Returns: the paper's §3.2 extension — one extra reverse topological
// traversal computes each procedure's returned constants (function
// results and exit values of by-reference formals and globals), which
// invoking call sites consume. A further forward "refresh" traversal
// (this repository's extension of the extension) feeds those summaries
// back into entry environments.
package main

import (
	"fmt"
	"log"

	fsicp "fsicp"
)

const src = `program returns

global cfg int

proc main() {
  use cfg
  var buf int
  call setup()
  call fill(buf)
  call consume(buf)
}

proc setup() {
  use cfg
  cfg = 256
}

proc fill(out int) {
  out = defaultv() * 2
}

func defaultv() int {
  return 21
}

proc consume(v int) {
  use cfg
  print v, cfg
}`

func main() {
	prog, err := fsicp.Load("returns.mf", src)
	if err != nil {
		log.Fatal(err)
	}

	base := prog.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
	fmt.Printf("without the extension: %d entry constants\n", len(base.Constants()))

	ext := prog.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true, ReturnConstants: true})
	if v, ok := ext.ReturnConstant("defaultv"); ok {
		fmt.Printf("with the extension: defaultv() returns %s\n", v)
	}
	fmt.Printf("with the extension: %d entry constants\n", len(ext.Constants()))

	full := prog.Analyze(fsicp.Config{
		Method: fsicp.FlowSensitive, PropagateFloats: true,
		ReturnConstants: true, ReturnsRefresh: true,
	})
	fmt.Printf("with the refresh pass: %d entry constants\n", len(full.Constants()))
	fmt.Print(full.AnnotatedListing())

	r := prog.Run(nil)
	if r.Err != nil {
		log.Fatal(r.Err)
	}
	fmt.Print("\nprogram output:\n", r.Output)
}
