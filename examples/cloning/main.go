// Cloning: the paper notes (§4) that call-site constant candidates are
// useful beyond propagation — e.g. for goal-directed procedure cloning
// (Metzger & Stroud). A formal that is NOT constant across all call
// sites may still be constant at individual sites; cloning the callee
// per constant-argument pattern recovers the lost precision.
//
// This example finds cloning opportunities from the analysis's
// per-call-site view, performs the cloning by rewriting the source,
// and shows that the cloned program yields more interprocedural
// constants.
package main

import (
	"fmt"
	"log"
	"strings"

	fsicp "fsicp"
)

const src = `program clone_demo

proc main() {
  var x int
  read x
  call kernel(64, 1)
  call kernel(64, 2)
  call kernel(x, 3)
}

proc kernel(size int, mode int) {
  var area int
  area = size * size
  print mode, area
}`

func main() {
	prog, err := fsicp.Load("clone.mf", src)
	if err != nil {
		log.Fatal(err)
	}
	a := prog.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
	fmt.Printf("original program: %d interprocedural constants\n", len(a.Constants()))
	for _, c := range a.Constants() {
		fmt.Printf("  %s.%s = %s\n", c.Proc, c.Var, c.Value)
	}

	// Group call sites of each callee by their constant-argument
	// pattern; patterns shared by at least one site but conflicting
	// with others are cloning candidates.
	patterns := map[string]map[string]int{} // callee -> pattern -> count
	for _, cs := range a.CallSites() {
		if !cs.Reachable {
			continue
		}
		key := strings.Join(cs.Args, ",")
		if patterns[cs.Callee] == nil {
			patterns[cs.Callee] = map[string]int{}
		}
		patterns[cs.Callee][key]++
	}
	fmt.Println("\ncall-site constant patterns:")
	for callee, pats := range patterns {
		for pat, n := range pats {
			fmt.Printf("  %s(%s) at %d site(s)\n", callee, pat, n)
		}
	}

	// Clone kernel for the constant pattern (64, _): rewrite the two
	// matching call sites to target kernel_64.
	cloned := strings.Replace(src, "call kernel(64, 1)", "call kernel_64(64, 1)", 1)
	cloned = strings.Replace(cloned, "call kernel(64, 2)", "call kernel_64(64, 2)", 1)
	cloned += `
proc kernel_64(size int, mode int) {
  var area int
  area = size * size
  print mode, area
}`

	prog2, err := fsicp.Load("cloned.mf", cloned)
	if err != nil {
		log.Fatal(err)
	}
	a2 := prog2.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
	fmt.Printf("\ncloned program: %d interprocedural constants\n", len(a2.Constants()))
	for _, c := range a2.Constants() {
		fmt.Printf("  %s.%s = %s\n", c.Proc, c.Var, c.Value)
	}
	s1, _, _ := a.Substitutions()
	s2, _, _ := a2.Substitutions()
	fmt.Printf("\nsubstitutions enabled: %d before cloning, %d after\n", s1, s2)

	// The same transformation, fully automated: the clone pass groups
	// call sites by constant pattern and retargets them.
	prog3, err := fsicp.Load("auto.mf", src)
	if err != nil {
		log.Fatal(err)
	}
	a3 := prog3.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
	nClones, nRetargeted := a3.Clone(4)
	a4 := prog3.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
	fmt.Printf("\nautomated pass: %d clone(s), %d call site(s) retargeted, %d constants:\n",
		nClones, nRetargeted, len(a4.Constants()))
	for _, c := range a4.Constants() {
		fmt.Printf("  %s.%s = %s\n", c.Proc, c.Var, c.Value)
	}

	// Both programs behave identically on the same input.
	input := func(string) any { return 7 }
	r1, r2 := prog.Run(input), prog2.Run(input)
	if r1.Err != nil || r2.Err != nil || r1.Output != r2.Output {
		log.Fatalf("cloning changed behaviour:\n%q vs %q (%v, %v)", r1.Output, r2.Output, r1.Err, r2.Err)
	}
	fmt.Println("cloned program output is identical — cloning is behaviour-preserving")
}
