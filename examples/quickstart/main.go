// Quickstart: load a MiniFort program, run the flow-sensitive
// interprocedural constant propagation, inspect the constants it
// proves, and execute the program before and after the transformation
// that materialises them.
package main

import (
	"fmt"
	"log"

	fsicp "fsicp"
)

const src = `program quickstart

global scale int = 10

proc main() {
  use scale
  var total int = 0
  call accumulate(total, 5)
  print "scaled by", scale
}

proc accumulate(sum int, n int) {
  use scale
  var i int
  for i = 1, n {
    sum = sum + i * scale
  }
  print "sum =", sum
}`

func main() {
	prog, err := fsicp.Load("quickstart.mf", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog)

	a := prog.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
	fmt.Printf("\nflow-sensitive ICP found %d constants in %v:\n", len(a.Constants()), a.Duration())
	for _, c := range a.Constants() {
		fmt.Printf("  at entry of %-12s %-8s = %s (%s)\n", c.Proc, c.Var, c.Value, c.Kind)
	}

	before := prog.Run(nil)
	if before.Err != nil {
		log.Fatal(before.Err)
	}
	fmt.Print("\nprogram output:\n", before.Output)

	assigns, folded, branches, removed := a.Transform()
	fmt.Printf("\ntransformation: %d entry assignments, %d folded instructions, %d folded branches, %d blocks removed\n",
		assigns, folded, branches, removed)

	after := prog.Run(nil)
	if after.Err != nil {
		log.Fatal(after.Err)
	}
	if after.Output == before.Output {
		fmt.Println("transformed program produces identical output — semantics preserved")
	} else {
		log.Fatalf("output changed!\nbefore:\n%s\nafter:\n%s", before.Output, after.Output)
	}
}
