// Figure 1 of the paper, reproduced: the example program on which the
// flow-sensitive method finds all five formal constants while the
// flow-insensitive method and every jump-function baseline find strict
// subsets.
package main

import (
	"fmt"
	"log"
	"strings"

	fsicp "fsicp"
)

const src = `program figure1
proc main() {
  call sub1(0)
}
proc sub1(f1 int) {
  var x int
  var y int
  if f1 != 0 {
    y = 1
  } else {
    y = 0
  }
  x = 0
  call sub2(y, 4, f1, x)
}
proc sub2(f2 int, f3 int, f4 int, f5 int) {
  var s int
  s = f2 + f3 + f4 + f5
  print s
}`

func formals(cs []fsicp.Constant) string {
	var names []string
	for _, c := range cs {
		if c.Kind == "formal" {
			names = append(names, c.Var)
		}
	}
	return strings.Join(names, ", ")
}

func main() {
	prog, err := fsicp.Load("figure1.mf", src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("METHOD           | FORMAL PARAMETER CONSTANTS")
	fmt.Println("-----------------|---------------------------")
	fs := prog.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
	fmt.Printf("%-17s| %s\n", "FLOW-SENSITIVE", formals(fs.Constants()))
	fi := prog.Analyze(fsicp.Config{Method: fsicp.FlowInsensitive, PropagateFloats: true})
	fmt.Printf("%-17s| %s\n", "FLOW-INSENSITIVE", formals(fi.Constants()))
	for _, k := range []fsicp.JumpFunctionKind{
		fsicp.Literal, fsicp.IntraConstant, fsicp.PassThrough, fsicp.Polynomial,
	} {
		a := prog.AnalyzeJumpFunctions(k)
		fmt.Printf("%-17s| %s\n", strings.ToUpper(k.String()), formals(a.Constants()))
	}

	fmt.Println()
	fmt.Println("Why: with f1 = 0 known at sub1's entry, the branch 'if f1 != 0'")
	fmt.Println("is decided during the propagation, so y = 0 on the only executable")
	fmt.Println("path — a constant no jump-function summary can compute, because")
	fmt.Println("jump functions are built before the interprocedural solution.")
}
