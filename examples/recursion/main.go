// Recursion: the paper's headline property is supporting recursion
// while performing only ONE flow-sensitive analysis per procedure. On
// call-graph back edges, the flow-sensitive method consults a
// precomputed flow-insensitive solution; as the fraction of back edges
// grows, the combined solution degrades gracefully from fully
// flow-sensitive toward the flow-insensitive one (§3.2).
package main

import (
	"fmt"
	"log"
	"strings"

	fsicp "fsicp"
)

// program builds a call chain main -> p1 -> ... -> pD in which the
// first k procedures also call back to p1 (bounded by a counter),
// creating k back edges. Each chain member receives a locally computed
// constant that only a flow-sensitive analysis can see.
func program(depth, back int) string {
	var b strings.Builder
	b.WriteString("program sweep\n\nproc main() {\n  var t int\n  t = 2 + 2\n  call p1(t, 3)\n}\n")
	for i := 1; i <= depth; i++ {
		fmt.Fprintf(&b, "proc p%d(v int, n int) {\n", i)
		if i < depth {
			fmt.Fprintf(&b, "  var t int\n  t = 2 + 2\n  call p%d(t, n)\n", i+1)
		}
		if i <= back {
			b.WriteString("  if n > 0 {\n    call p1(v, n - 1)\n  }\n")
		}
		b.WriteString("  print v, n\n}\n")
	}
	return b.String()
}

func count(a interface{ Constants() []fsicp.Constant }) int {
	return len(a.Constants())
}

func main() {
	const depth = 8
	fmt.Println("back edges / total | ratio | FS constants | FI constants | FI fallback uses")
	fmt.Println("-------------------|-------|--------------|--------------|-----------------")
	for k := 0; k <= depth; k++ {
		prog, err := fsicp.Load("sweep.mf", program(depth, k))
		if err != nil {
			log.Fatal(err)
		}
		back, total := prog.BackEdges()
		fs := prog.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
		fi := prog.Analyze(fsicp.Config{Method: fsicp.FlowInsensitive, PropagateFloats: true})
		fmt.Printf("       %2d / %-6d| %5.2f | %12d | %12d | %d\n",
			back, total, float64(back)/float64(total), count(fs), count(fi),
			fs.UsedFlowInsensitiveFallback())

		// Soundness even under recursion: the interpreter agrees.
		r := prog.Run(nil)
		if r.Err != nil {
			log.Fatalf("depth %d back %d: %v", depth, k, r.Err)
		}
	}
	fmt.Println()
	fmt.Println("With zero back edges the single-pass method equals an iterative")
	fmt.Println("flow-sensitive solution; each back edge substitutes the cheaper")
	fmt.Println("flow-insensitive answer on that edge only — no iteration, and every")
	fmt.Println("procedure still gets exactly one Wegman–Zadeck analysis.")
}
