package fsicp_test

import (
	"strings"
	"testing"

	fsicp "fsicp"
)

// adversarialSources is the malformed/pathological input matrix the
// public entrypoints must reject with a positioned error (or accept)
// without ever panicking. The same shapes are seeded into FuzzParse's
// corpus (internal/parser/testdata/fuzz/FuzzParse).
func adversarialSources() map[string]string {
	return map[string]string{
		"deep-parens":     "program p\nproc main() { x = " + strings.Repeat("(", 60000) + "1" + strings.Repeat(")", 60000) + " }",
		"huge-literal":    "program p\nproc main() { print 999999999999999999999999999999 }",
		"div-zero-const":  "program p\nproc main() { var x int = 1/0\n print x }",
		"repeat-header":   strings.Repeat("program p\n", 10000),
		"many-procs":      "program p\n" + strings.Repeat("proc a() {}\n", 20000),
		"deep-ifs":        "program p\nproc main() {" + strings.Repeat(" if true {", 20000) + strings.Repeat("}", 20000) + "}",
		"many-args":       "program p\nproc main() { call main(" + strings.Repeat("1,", 5000) + "1) }",
		"null-bytes":      "program \x00\xff\nproc main() { \x00 }",
		"truncated-str":   "program p\nproc main() { print \"unter",
		"empty":           "",
		"only-whitespace": " \t\n\r\n ",
	}
}

// TestLoadNeverPanicsOnMalformedInput: every adversarial input either
// loads or returns an error with a source position; none may panic.
func TestLoadNeverPanicsOnMalformedInput(t *testing.T) {
	for name, src := range adversarialSources() {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Load panicked: %v", r)
				}
			}()
			prog, err := fsicp.Load(name+".mf", src)
			if err != nil {
				if !strings.Contains(err.Error(), ".mf") && !strings.Contains(err.Error(), ":") {
					t.Errorf("error is not positioned: %v", err)
				}
				return
			}
			// Accepted input must also analyse without panicking.
			prog.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
		})
	}
}

// TestSessionUpdateNeverPanicsOnMalformedInput: a live session fed
// malformed updates reports errors and keeps its last good version.
func TestSessionUpdateNeverPanicsOnMalformedInput(t *testing.T) {
	good := "program p\nproc main() { call f(1) }\nproc f(a int) { print a }"
	sess, err := fsicp.NewSession("s.mf", good)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true}
	want := fingerprint(sess.Analyze(cfg))
	for name, src := range adversarialSources() {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: Update panicked: %v", name, r)
				}
			}()
			if _, err := sess.Update(src); err != nil {
				return // rejected; session must still serve the old version
			}
			// Accepted: roll back to the known-good program for the
			// invariant check below.
			if _, err := sess.Update(good); err != nil {
				t.Fatalf("%s: rollback failed: %v", name, err)
			}
		}()
		if got := fingerprint(sess.Analyze(cfg)); got != want {
			t.Fatalf("%s: session analysis changed after a rejected update", name)
		}
	}
}
