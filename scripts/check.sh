#!/bin/sh
# Full verification gate: build, vet, format, race-enabled tests, and
# the fault-injection smoke matrix.
set -eu
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race =="
# -short skips the corpus-scale tests (10k procedures; 2k at four
# worker counts) — they run without the race detector in the
# large-corpus stage below, where their size buys signal instead of
# multiplying race overhead.
go test -race -short ./...

echo "== fault-injection smoke (fixed seeds) =="
# The resilience suites run deterministic seed matrices; re-run them
# race-enabled and verbose-on-failure so a regression in the failure
# model fails the gate with the exact seed named.
go test -race -count=1 \
    -run 'TestInjectedFaultsSoundness|TestFaultDeterminismAcrossWorkers|TestFuelBudgetSoundness|TestCancelledContextDegradesEverything' \
    ./internal/icp
go test -race -count=1 \
    -run 'TestFaultsNeverEscapePublicAPI|TestFaultReportsIdenticalAcrossWorkers|TestCancellationHygiene|TestDegradedResultsNotReusedAcrossRuns' \
    .

echo "== warm-cache determinism =="
# The persistent summary store must change analysis time only: cold,
# warm-disk, and corrupted-cache runs must produce byte-identical
# reports, and the store's fault-injection matrix must degrade every
# damaged entry to a clean recompute.
go test -race -count=1 \
    -run 'TestWarmDiskCacheDeterminism|TestCacheStatsShape' \
    .
go test -race -count=1 \
    -run 'TestCorruptionDegradesToMiss|TestWrongKeyHashRejected|TestEviction' \
    ./internal/store
go test -race -count=1 ./internal/codec

echo "== server soak smoke =="
# The daemon's chaos soak: concurrent clients against a deliberately
# tiny server (2 slots, queue of 2, shed watermark 1) with injected
# panics, starved fuel, and 1ms deadlines. Race-enabled; every request
# must come back sound or 429, and no goroutine may survive the drain.
go test -race -count=1 \
    -run 'TestServeChaosSoak|TestReportsByteIdenticalAcrossPoolSizes|TestPooledSessionReusableAfterDegradedRun' \
    ./internal/serve
go test -race -count=1 ./cmd/fsicpd

echo "== spill/delta-skip determinism (race) =="
# The analysis-phase fast paths — spill-aware environments and
# delta-propagation skips — must be invisible in the output: all 7
# methods on the 2k corpus, workers 1/2/4/8, with the spill threshold
# forced to 0 and with skipping forced off, race-enabled.
go test -race -count=1 -run 'TestSpillAndDeltaSkipDeterminism' .

echo "== large-corpus smoke =="
# The scaling suite at smoke size: a 2049-procedure multi-module corpus
# must produce byte-identical results at workers 1/2/4/8, a malformed
# file in a corpus must be reported by name without leaking goroutines,
# and the 10k-procedure corpus must load and analyse end to end. The
# full 25k corpus stays behind FSICP_BENCH_LARGE=1 (set it in a
# scheduled job, not per push).
go test -count=1 \
    -run 'TestLargeCorpus|TestLoadDirCorpus' \
    .

echo "== bench smoke =="
# One iteration of the wavefront and sharded-load benchmarks: catches
# crashes or hangs in the benchmark harnesses themselves without paying
# for a full measurement.
go test -run '^$' -bench 'BenchmarkAnalyzeParallel|BenchmarkLoadParallel|BenchmarkColdEndToEnd|BenchmarkColdWarmDisk|BenchmarkOptimize|BenchmarkServeSustained|BenchmarkLargeCorpus|BenchmarkAnalyzeLargeCorpus' -benchtime=1x -benchmem .

echo "== allocation-regression gate =="
# Re-measures the guarded benchmarks and fails when allocs/op grossly
# exceeds the committed BENCH_icp.json (see the file's note for how to
# refresh it after an intentional change).
FSICP_BENCH_GATE=1 go test -count=1 -run TestBenchAllocGate .

echo "ok"
