#!/bin/sh
# Full verification gate: build, vet, format, race-enabled tests.
set -eu
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race =="
go test -race ./...

echo "ok"
