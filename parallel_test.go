package fsicp_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	fsicp "fsicp"
	"fsicp/internal/bench"
)

// fingerprint renders everything the facade can report about one
// analysis into a single string, so two runs can be compared
// byte-for-byte.
func fingerprint(a *fsicp.Analysis) string {
	var b strings.Builder
	for _, c := range a.Constants() {
		fmt.Fprintf(&b, "const %s.%s = %s (%s)\n", c.Proc, c.Var, c.Value, c.Kind)
	}
	fmt.Fprintf(&b, "callsites %+v\n", a.CallSiteMetrics())
	fmt.Fprintf(&b, "entries %+v\n", a.EntryMetrics())
	for _, cs := range a.CallSites() {
		fmt.Fprintf(&b, "site %s->%s %v reachable=%v\n", cs.Caller, cs.Callee, cs.Args, cs.Reachable)
	}
	b.WriteString(a.AnnotatedListing())
	return b.String()
}

func loadLargest(t *testing.T) *fsicp.Program {
	t.Helper()
	p := bench.SPECfp92()[0] // 013.spice2g6, the largest synthetic program
	prog, err := fsicp.Load(p.Name+".mf", bench.Build(p))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestAnalyzeDeterministicAcrossWorkers asserts the wavefront scheduler
// produces byte-identical results for every worker count: 5 runs each
// with Workers=1 and Workers=8 must agree on constants, metrics, call
// sites, and the annotated listing, for every method.
func TestAnalyzeDeterministicAcrossWorkers(t *testing.T) {
	prog := loadLargest(t)
	configs := []fsicp.Config{
		{Method: fsicp.FlowSensitive, PropagateFloats: true},
		{Method: fsicp.FlowSensitive, PropagateFloats: true, ReturnConstants: true},
		{Method: fsicp.FlowSensitiveIterative, PropagateFloats: true},
		{Method: fsicp.FlowInsensitive, PropagateFloats: true},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Method.String(), func(t *testing.T) {
			var want string
			for run := 0; run < 5; run++ {
				for _, workers := range []int{1, 8} {
					c := cfg
					c.Workers = workers
					got := fingerprint(prog.Analyze(c))
					if want == "" {
						want = got
						continue
					}
					if got != want {
						t.Fatalf("run %d workers=%d diverged from the first run", run, workers)
					}
				}
			}
		})
	}
}

// TestConcurrentAnalyze asserts one loaded Program can be analysed from
// many goroutines at once (Analyze never mutates the program), and that
// concurrent runs with the same configuration still agree.
func TestConcurrentAnalyze(t *testing.T) {
	prog := loadLargest(t)
	configs := []fsicp.Config{
		{Method: fsicp.FlowSensitive, PropagateFloats: true, Workers: 1},
		{Method: fsicp.FlowSensitive, PropagateFloats: true, Workers: 4},
		{Method: fsicp.FlowSensitive, PropagateFloats: true, ReturnConstants: true, Workers: 2},
		{Method: fsicp.FlowSensitiveIterative, PropagateFloats: true, Workers: 4},
		{Method: fsicp.FlowInsensitive, PropagateFloats: true},
	}
	const rounds = 2
	got := make([]string, len(configs)*rounds)
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for i, cfg := range configs {
			wg.Add(1)
			go func(slot int, cfg fsicp.Config) {
				defer wg.Done()
				got[slot] = fingerprint(prog.Analyze(cfg))
			}(r*len(configs)+i, cfg)
		}
	}
	wg.Wait()
	for i := range configs {
		if got[i] != got[len(configs)+i] {
			t.Errorf("config %d: concurrent runs disagree", i)
		}
	}
	// The two flow-sensitive configs differ only in worker count, so
	// their results must match too.
	if got[0] != got[1] {
		t.Errorf("worker counts 1 and 4 disagree under concurrency")
	}
}

// TestStatsTable asserts Analysis.Stats reports the load passes and the
// analysis passes in execution order, and that the rendered table
// contains every pass name.
func TestStatsTable(t *testing.T) {
	prog := loadLargest(t)
	a := prog.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true, ReturnConstants: true})
	a.CallSiteMetrics()

	stats := a.Stats()
	order := map[string]int{}
	for i, st := range stats {
		if _, dup := order[st.Name]; !dup {
			order[st.Name] = i
		}
	}
	for _, seq := range [][2]string{
		{"parse", "sem"}, {"sem", "irbuild"}, {"irbuild", "callgraph"},
		{"callgraph", "alias"}, {"alias", "modref"}, {"modref", "clobbers"},
		{"clobbers", "ssa"}, {"ssa", "FS"}, {"FS", "returns"}, {"returns", "metrics"},
	} {
		a, aok := order[seq[0]]
		b, bok := order[seq[1]]
		if !aok || !bok {
			t.Fatalf("missing pass %q or %q in stats %v", seq[0], seq[1], order)
		}
		if a >= b {
			t.Errorf("pass %q recorded at %d, after %q at %d", seq[0], a, seq[1], b)
		}
	}

	table := a.StatsTable()
	for name := range order {
		if !strings.Contains(table, name) {
			t.Errorf("stats table missing pass %q:\n%s", name, table)
		}
	}
	if !strings.Contains(table, "TOTAL") {
		t.Errorf("stats table missing TOTAL row:\n%s", table)
	}
}

// TestCallSitesReachability asserts CallSites reports a zero-argument
// call in a provably dead block as unreachable (it used to be reported
// reachable because no ⊤ argument value flagged it).
func TestCallSitesReachability(t *testing.T) {
	src := `program deadcall

proc main() {
  call driver(true)
}

proc ping() {
  print 1
}

proc live() {
  print 2
}

proc driver(flag bool) {
  if flag {
    call live()
  } else {
    call ping()
  }
}
`
	prog, err := fsicp.Load("deadcall.mf", src)
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Analyze(fsicp.Config{Method: fsicp.FlowSensitive, PropagateFloats: true})
	seen := map[string]bool{}
	for _, cs := range a.CallSites() {
		seen[cs.Callee] = true
		switch cs.Callee {
		case "ping":
			if cs.Reachable {
				t.Errorf("zero-arg call to ping sits in a dead branch but is reported reachable")
			}
		case "live", "driver":
			if !cs.Reachable {
				t.Errorf("call to %s is live but reported unreachable", cs.Callee)
			}
		}
	}
	for _, want := range []string{"ping", "live", "driver"} {
		if !seen[want] {
			t.Fatalf("call site for %s not reported", want)
		}
	}
}

// TestMethodStringsRobust asserts the String methods never panic on
// out-of-range values.
func TestMethodStringsRobust(t *testing.T) {
	if got := fsicp.Method(42).String(); got != "unknown(42)" {
		t.Errorf("Method(42).String() = %q", got)
	}
	if got := fsicp.JumpFunctionKind(-1).String(); got != "unknown(-1)" {
		t.Errorf("JumpFunctionKind(-1).String() = %q", got)
	}
	if got := fsicp.FlowSensitive.String(); got != "flow-sensitive" {
		t.Errorf("FlowSensitive.String() = %q", got)
	}
	if got := fsicp.Polynomial.String(); got != "polynomial" {
		t.Errorf("Polynomial.String() = %q", got)
	}
}
